//! The concrete fitted-model enum behind every learner, with a line-based
//! text serialization for workflow snapshots.
//!
//! [`Learner::fit_model`](crate::model::Learner::fit_model) returns this
//! enum so online-serving code can persist a trained matcher and reload it
//! with **bit-identical** predictions. Floats are written with `{:?}`,
//! which prints enough digits to round-trip every `f64` bit pattern through
//! `str::parse::<f64>()`; integers and tags are plain tokens. The format is
//! line-oriented and self-delimiting (trees encode pre-order with fixed
//! arity), so a forest of `N` trees decodes from one shared line iterator.

use crate::bayes::{ClassStats, NaiveBayesModel};
use crate::error::MlError;
use crate::linear::{LinearModel, Standardizer};
use crate::model::{ConstantModel, Model};
use crate::tree::{DecisionTreeModel, FlatTree};
use crate::forest::{FlatForest, RandomForestModel};

/// A fitted model in its concrete (serializable) form.
///
/// Every variant implements [`Model`] by delegation, so a `FittedModel` can
/// be used anywhere a `Box<dyn Model>` could — plus it can be encoded to
/// text and decoded back without loss.
#[derive(Debug, Clone)]
pub enum FittedModel {
    /// Constant-probability model (degenerate single-class training sets).
    Constant(ConstantModel),
    /// A CART decision tree.
    Tree(DecisionTreeModel),
    /// A random forest of CART trees.
    Forest(RandomForestModel),
    /// A linear scorer (logistic regression / linear regression / SVM).
    Linear(LinearModel),
    /// Gaussian naive Bayes.
    Bayes(NaiveBayesModel),
}

impl Model for FittedModel {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        match self {
            FittedModel::Constant(m) => m.predict_proba(row),
            FittedModel::Tree(m) => m.predict_proba(row),
            FittedModel::Forest(m) => m.predict_proba(row),
            FittedModel::Linear(m) => m.predict_proba(row),
            FittedModel::Bayes(m) => m.predict_proba(row),
        }
    }
}

/// A fitted model prepared for cache-friendly block scoring: tree-shaped
/// models are flattened into array form (scored trees-outer over a
/// contiguous row block), everything else falls back to per-row
/// `predict_proba`. Scores are bit-identical to the source model on every
/// input — the flat walk performs the same comparisons in the same order,
/// and the forest mean uses the same left fold and single division.
#[derive(Debug, Clone)]
pub enum BlockScorer {
    /// A flattened decision tree (no mean fold — a bare walk per row).
    Tree(FlatTree),
    /// A flattened forest, scored trees-outer / rows-inner.
    Forest(FlatForest),
    /// Dense models (constant / linear / Bayes): per-row delegation.
    Dense(FittedModel),
}

impl BlockScorer {
    /// Scores every row of a row-major `block` (row `r` is
    /// `block[r * stride..][..stride]`) into `out`; `out.len()` must equal
    /// the row count.
    pub fn score_block(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        debug_assert!(stride > 0 && block.len() == out.len() * stride);
        match self {
            BlockScorer::Tree(t) => {
                for (slot, row) in out.iter_mut().zip(block.chunks_exact(stride)) {
                    *slot = t.score(row);
                }
            }
            BlockScorer::Forest(f) => f.score_block(block, stride, out),
            BlockScorer::Dense(m) => {
                for (slot, row) in out.iter_mut().zip(block.chunks_exact(stride)) {
                    *slot = m.predict_proba(row);
                }
            }
        }
    }

    /// Scores a single row (bit-identical to `predict_proba` on the
    /// source model).
    pub fn score_row(&self, row: &[f64]) -> f64 {
        match self {
            BlockScorer::Tree(t) => t.score(row),
            BlockScorer::Forest(f) => f.score_row(row),
            BlockScorer::Dense(m) => m.predict_proba(row),
        }
    }
}

impl FittedModel {
    /// Prepares this model for [`BlockScorer::score_block`].
    pub fn block_scorer(&self) -> BlockScorer {
        match self {
            FittedModel::Tree(t) => BlockScorer::Tree(t.flatten()),
            FittedModel::Forest(f) => BlockScorer::Forest(f.flatten()),
            other => BlockScorer::Dense(other.clone()),
        }
    }
}

fn bad(detail: impl std::fmt::Display) -> MlError {
    MlError::BadParameter(format!("corrupt model encoding: {detail}"))
}

/// Space-separated `{:?}` floats appended after a `key` token.
fn push_f64s(out: &mut String, key: &str, values: &[f64]) {
    out.push_str(key);
    for v in values {
        out.push_str(&format!(" {v:?}"));
    }
    out.push('\n');
}

/// Parses the rest of a line (after the expected `key` token) as floats.
fn parse_f64s(line: Option<&str>, key: &str) -> Result<Vec<f64>, MlError> {
    let line = line.ok_or_else(|| bad(format!("missing `{key}` line")))?;
    let mut toks = line.split_whitespace();
    if toks.next() != Some(key) {
        return Err(bad(format!("expected `{key}` line, got {line:?}")));
    }
    toks.map(|t| t.parse::<f64>().map_err(|_| bad(format!("unparsable float in `{key}`"))))
        .collect()
}

/// Like [`parse_f64s`] but requires exactly one float.
fn parse_f64(line: Option<&str>, key: &str) -> Result<f64, MlError> {
    let v = parse_f64s(line, key)?;
    match v.as_slice() {
        [x] => Ok(*x),
        _ => Err(bad(format!("`{key}` must carry exactly one value"))),
    }
}

fn decode_class_stats<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    prefix: &str,
) -> Result<ClassStats, MlError> {
    let log_prior = parse_f64(lines.next(), &format!("{prefix}.log_prior"))?;
    let means = parse_f64s(lines.next(), &format!("{prefix}.means"))?;
    let vars = parse_f64s(lines.next(), &format!("{prefix}.vars"))?;
    if means.len() != vars.len() {
        return Err(bad(format!("`{prefix}` means/vars length mismatch")));
    }
    Ok(ClassStats { log_prior, means, vars })
}

fn encode_class_stats(out: &mut String, prefix: &str, s: &ClassStats) {
    push_f64s(out, &format!("{prefix}.log_prior"), &[s.log_prior]);
    push_f64s(out, &format!("{prefix}.means"), &s.means);
    push_f64s(out, &format!("{prefix}.vars"), &s.vars);
}

impl FittedModel {
    /// Stable tag naming the variant (`constant`, `tree`, `forest`,
    /// `linear`, `bayes`) — the first line of [`FittedModel::encode`].
    pub fn kind(&self) -> &'static str {
        match self {
            FittedModel::Constant(_) => "constant",
            FittedModel::Tree(_) => "tree",
            FittedModel::Forest(_) => "forest",
            FittedModel::Linear(_) => "linear",
            FittedModel::Bayes(_) => "bayes",
        }
    }

    /// The set of feature indices `predict_proba` can ever read, or `None`
    /// when the model is *dense* (reads every feature).
    ///
    /// Tree-shaped models visit only their split features, so serving can
    /// skip extracting the rest. Linear and Bayes models are reported dense
    /// even when a weight is zero: skipping a term is not bit-safe (a
    /// masked `NaN`/`inf` input would otherwise change `0.0 × x` sums, and
    /// the standardizer can produce non-finite values when a std is zero).
    pub fn referenced_features(&self) -> Option<std::collections::BTreeSet<usize>> {
        use std::collections::BTreeSet;
        match self {
            FittedModel::Constant(_) => Some(BTreeSet::new()),
            FittedModel::Tree(t) => {
                let mut set = BTreeSet::new();
                t.collect_split_features(&mut set);
                Some(set)
            }
            FittedModel::Forest(f) => {
                let mut set = BTreeSet::new();
                for t in f.trees() {
                    t.collect_split_features(&mut set);
                }
                Some(set)
            }
            FittedModel::Linear(_) | FittedModel::Bayes(_) => None,
        }
    }

    /// Serializes the model to the line-based text format. The result
    /// decodes back (via [`FittedModel::decode`]) to a model whose
    /// `predict_proba` is bit-identical on every input.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(self.kind());
        out.push('\n');
        match self {
            FittedModel::Constant(m) => {
                push_f64s(&mut out, "p", &[m.proba]);
            }
            FittedModel::Tree(t) => t.encode_lines(&mut out),
            FittedModel::Forest(f) => {
                out.push_str(&format!("trees {}\n", f.trees().len()));
                for t in f.trees() {
                    t.encode_lines(&mut out);
                }
            }
            FittedModel::Linear(m) => {
                push_f64s(&mut out, "means", &m.standardizer.means);
                push_f64s(&mut out, "stds", &m.standardizer.stds);
                push_f64s(&mut out, "weights", &m.weights);
                push_f64s(&mut out, "bias", &[m.bias]);
                out.push_str(if m.sigmoid_link { "link sigmoid\n" } else { "link clamp\n" });
            }
            FittedModel::Bayes(m) => {
                encode_class_stats(&mut out, "pos", &m.pos);
                encode_class_stats(&mut out, "neg", &m.neg);
            }
        }
        out
    }

    /// Parses a model previously produced by [`FittedModel::encode`].
    /// Malformed input yields [`MlError::BadParameter`] — never a panic —
    /// so snapshot loaders can quarantine corrupt artifacts.
    pub fn decode(text: &str) -> Result<FittedModel, MlError> {
        let mut lines = text.lines();
        let kind = lines.next().ok_or_else(|| bad("empty model text"))?.trim();
        let model = match kind {
            "constant" => {
                FittedModel::Constant(ConstantModel { proba: parse_f64(lines.next(), "p")? })
            }
            "tree" => FittedModel::Tree(DecisionTreeModel::decode_from(&mut lines)?),
            "forest" => {
                let header = lines.next().ok_or_else(|| bad("missing `trees` line"))?;
                let mut toks = header.split_whitespace();
                if toks.next() != Some("trees") {
                    return Err(bad(format!("expected `trees` line, got {header:?}")));
                }
                let n: usize = toks
                    .next()
                    .ok_or_else(|| bad("missing tree count"))?
                    .parse()
                    .map_err(|_| bad("unparsable tree count"))?;
                let trees = (0..n)
                    .map(|_| DecisionTreeModel::decode_from(&mut lines))
                    .collect::<Result<Vec<_>, _>>()?;
                FittedModel::Forest(RandomForestModel::from_trees(trees))
            }
            "linear" => {
                let means = parse_f64s(lines.next(), "means")?;
                let stds = parse_f64s(lines.next(), "stds")?;
                if means.len() != stds.len() {
                    return Err(bad("means/stds length mismatch"));
                }
                let weights = parse_f64s(lines.next(), "weights")?;
                let bias = parse_f64(lines.next(), "bias")?;
                let link_line = lines.next().ok_or_else(|| bad("missing `link` line"))?;
                let sigmoid_link = match link_line.trim() {
                    "link sigmoid" => true,
                    "link clamp" => false,
                    other => return Err(bad(format!("unknown link {other:?}"))),
                };
                FittedModel::Linear(LinearModel {
                    standardizer: Standardizer { means, stds },
                    weights,
                    bias,
                    sigmoid_link,
                })
            }
            "bayes" => {
                let pos = decode_class_stats(&mut lines, "pos")?;
                let neg = decode_class_stats(&mut lines, "neg")?;
                FittedModel::Bayes(NaiveBayesModel { pos, neg })
            }
            other => return Err(bad(format!("unknown model kind {other:?}"))),
        };
        if lines.next().is_some() {
            return Err(bad("trailing lines after model"));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::model::Learner;
    use crate::standard_learners;

    fn training_data() -> Dataset {
        // Deterministic, two-class, mildly noisy lattice over 3 features.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let t = i as f64 / 60.0;
            let wiggle = ((i * 7) % 13) as f64 / 13.0 - 0.5;
            x.push(vec![t, 1.0 - t, 0.3 * wiggle + t * 0.1]);
            y.push(t + 0.1 * wiggle > 0.5);
        }
        Dataset::new(vec!["a".into(), "b".into(), "c".into()], x, y).unwrap()
    }

    fn probe_rows() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..=20 {
            let v = i as f64 / 20.0;
            rows.push(vec![v, 1.0 - v, v * 0.5 - 0.1]);
        }
        rows.push(vec![1e6, -1e6, 0.0]);
        rows.push(vec![-3.5, 42.0, 0.123456789012345]);
        rows
    }

    #[test]
    fn every_standard_learner_roundtrips_bit_identically() {
        let data = training_data();
        for learner in standard_learners(20190326) {
            let model = learner.fit_model(&data).unwrap();
            let text = model.encode();
            let back = FittedModel::decode(&text)
                .unwrap_or_else(|e| panic!("{}: {e:?}", learner.name()));
            assert_eq!(model.kind(), back.kind(), "{}", learner.name());
            for row in probe_rows() {
                assert_eq!(
                    model.predict_proba(&row).to_bits(),
                    back.predict_proba(&row).to_bits(),
                    "{} diverged on {row:?}",
                    learner.name()
                );
            }
            // Encoding is canonical: re-encoding the decoded model is a
            // fixed point.
            assert_eq!(text, back.encode(), "{}", learner.name());
        }
    }

    #[test]
    fn constant_roundtrips_exact_bits() {
        // A proba with a non-terminating binary expansion must survive.
        let m = FittedModel::Constant(ConstantModel { proba: 0.1 + 0.2 });
        let back = FittedModel::decode(&m.encode()).unwrap();
        assert_eq!(m.predict_proba(&[]).to_bits(), back.predict_proba(&[]).to_bits());
    }

    #[test]
    fn single_class_data_encodes_as_constant() {
        let d = Dataset::new(vec!["f".into()], vec![vec![0.0], vec![1.0]], vec![true, true])
            .unwrap();
        let m = crate::linear::LogisticRegressionLearner::default().fit_model(&d).unwrap();
        assert_eq!(m.kind(), "constant");
        let back = FittedModel::decode(&m.encode()).unwrap();
        assert_eq!(back.predict_proba(&[0.5]).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn decode_rejects_garbage_with_typed_errors() {
        for text in [
            "",
            "spaceship\n",
            "constant\n",
            "constant\np\n",
            "constant\np 0.5 0.5\n",
            "tree\n",
            "tree\nX 1 2 3\n",
            "forest\n",
            "forest\ntrees two\n",
            "forest\ntrees 2\nL 0.5\n",
            "linear\nmeans 0.0\nstds 1.0 1.0\nweights 0.0\nbias 0.0\nlink sigmoid\n",
            "linear\nmeans 0.0\nstds 1.0\nweights 0.0\nbias 0.0\nlink tanh\n",
            "bayes\npos.log_prior 0.0\npos.means 1.0\npos.vars 1.0 2.0\n",
            "constant\np 0.5\nextra\n",
        ] {
            let r = FittedModel::decode(text);
            assert!(
                matches!(r, Err(MlError::BadParameter(_))),
                "accepted {text:?}: {:?}",
                r.map(|m| m.kind())
            );
        }
    }

    #[test]
    fn truncated_forest_is_rejected() {
        let data = training_data();
        let fitted = crate::forest::RandomForestLearner { n_trees: 3, ..Default::default() }
            .fit_model(&data)
            .unwrap();
        let text = fitted.encode();
        let cut = text.len() / 2;
        // Cut on a line boundary to exercise "ran out of node lines" rather
        // than a float parse failure.
        let boundary = text[..cut].rfind('\n').map(|i| i + 1).unwrap_or(0);
        assert!(FittedModel::decode(&text[..boundary]).is_err());
    }
}
