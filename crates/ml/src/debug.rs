//! Matcher debugging: mismatch mining via the two-way split of Section 9.
//!
//! "We randomly split H into two sets I and J, trained the RF matcher on I,
//! then applied it to J and identified mismatches in J … then trained on J
//! and applied it to I." Each mismatch (held-out prediction ≠ given label)
//! is a lead: either the label is wrong, or the feature set cannot express
//! the distinction (the case study found the latter — missing
//! case-insensitive features).

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Learner;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One disagreement between a held-out prediction and the given label.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Row index into the dataset.
    pub index: usize,
    /// What the model predicted.
    pub predicted: bool,
    /// What the label says.
    pub labeled: bool,
    /// The model's match probability for the row.
    pub proba: f64,
}

/// Splits the data in half, trains on each half, predicts the other, and
/// returns every mismatch, sorted by how confident the model was in its
/// disagreement (most confident first).
pub fn mine_mismatches(
    learner: &dyn Learner,
    data: &Dataset,
    seed: u64,
) -> Result<Vec<Mismatch>, MlError> {
    if data.len() < 4 {
        return Err(MlError::BadParameter(
            "mismatch mining needs at least 4 examples".to_string(),
        ));
    }
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let (first, second) = order.split_at(order.len() / 2);

    let mut mismatches = Vec::new();
    for (train_idx, test_idx) in [(first, second), (second, first)] {
        let model = learner.fit(&data.subset(train_idx))?;
        for &i in test_idx {
            let proba = model.predict_proba(&data.x[i]);
            let predicted = proba >= 0.5;
            if predicted != data.y[i] {
                mismatches.push(Mismatch { index: i, predicted, labeled: data.y[i], proba });
            }
        }
    }
    // Confidence of disagreement: distance of proba from 0.5.
    mismatches.sort_by(|a, b| {
        let ca = (a.proba - 0.5).abs();
        let cb = (b.proba - 0.5).abs();
        cb.partial_cmp(&ca)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeLearner;

    fn clean_data(n: usize) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = (i % 10) as f64 / 10.0;
            x.push(vec![v]);
            y.push(v > 0.55);
        }
        Dataset::new(vec!["f0".into()], x, y).unwrap()
    }

    #[test]
    fn clean_data_has_few_mismatches() {
        let d = clean_data(80);
        let m = mine_mismatches(&DecisionTreeLearner::default(), &d, 1).unwrap();
        assert!(m.len() <= 4, "{} mismatches on clean data", m.len());
    }

    #[test]
    fn flipped_label_is_mined() {
        let mut d = clean_data(80);
        let victim = d.y.iter().position(|&b| b).unwrap();
        d.y[victim] = false;
        let m = mine_mismatches(&DecisionTreeLearner::default(), &d, 1).unwrap();
        assert!(
            m.iter().any(|mm| mm.index == victim && mm.predicted && !mm.labeled),
            "flipped label not found in {m:?}"
        );
    }

    #[test]
    fn sorted_by_confidence() {
        let mut d = clean_data(80);
        for i in 0..4 {
            d.y[i * 13] = !d.y[i * 13];
        }
        let m = mine_mismatches(&DecisionTreeLearner::default(), &d, 2).unwrap();
        for w in m.windows(2) {
            assert!((w[0].proba - 0.5).abs() >= (w[1].proba - 0.5).abs() - 1e-12);
        }
    }

    #[test]
    fn needs_four_examples() {
        let d = Dataset::new(
            vec!["f".into()],
            vec![vec![0.0], vec![1.0]],
            vec![false, true],
        )
        .unwrap();
        assert!(mine_mismatches(&DecisionTreeLearner::default(), &d, 0).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let mut d = clean_data(60);
        d.y[7] = !d.y[7];
        let a = mine_mismatches(&DecisionTreeLearner::default(), &d, 5).unwrap();
        let b = mine_mismatches(&DecisionTreeLearner::default(), &d, 5).unwrap();
        assert_eq!(a, b);
    }
}
