//! Linear models: logistic regression, linear regression, and a linear SVM
//! (Pegasos). Three of the six matchers PyMatcher offers in the Section 9
//! bake-off.
//!
//! All three standardize features internally (z-score on training
//! statistics) so learning rates and regularization behave uniformly across
//! feature scales; the fitted standardizer travels with the model.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::{validate_training, ConstantModel, Learner, Model};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-column z-score standardizer.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Standardizer {
    pub(crate) means: Vec<f64>,
    pub(crate) stds: Vec<f64>,
}

impl Standardizer {
    pub(crate) fn fit(x: &[Vec<f64>], n_features: usize) -> Standardizer {
        let n = x.len().max(1) as f64;
        let mut means = vec![0.0; n_features];
        for row in x {
            for (c, v) in row.iter().enumerate() {
                means[c] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; n_features];
        for row in x {
            for (c, v) in row.iter().enumerate() {
                vars[c] += (v - means[c]).powi(2);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0 // constant column: leave centred values at 0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { means, stds }
    }

    pub(crate) fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(c, v)| (v - self.means.get(c).copied().unwrap_or(0.0)) / self.stds.get(c).copied().unwrap_or(1.0))
            .collect()
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A fitted linear scorer: `proba = link(w · z(x) + b)`. Fitted by all
/// three linear learners (logistic / linear regression / SVM); exposed so
/// [`crate::fitted::FittedModel`] can carry and serialize it.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    pub(crate) standardizer: Standardizer,
    pub(crate) weights: Vec<f64>,
    pub(crate) bias: f64,
    /// `true` → sigmoid link; `false` → clamp to `[0, 1]` (linear regression).
    pub(crate) sigmoid_link: bool,
}

impl Model for LinearModel {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let z = self.standardizer.transform_row(row);
        let score: f64 =
            self.weights.iter().zip(&z).map(|(w, v)| w * v).sum::<f64>() + self.bias;
        if self.sigmoid_link {
            sigmoid(score)
        } else {
            score.clamp(0.0, 1.0)
        }
    }
}

/// Logistic regression trained by full-batch gradient descent with L2
/// regularization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticRegressionLearner {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 penalty strength (applied to weights, not the bias).
    pub l2: f64,
}

impl Default for LogisticRegressionLearner {
    fn default() -> Self {
        LogisticRegressionLearner { iterations: 400, learning_rate: 0.5, l2: 1e-3 }
    }
}

impl Learner for LogisticRegressionLearner {
    fn name(&self) -> String {
        "Logistic Regression".to_string()
    }

    fn fit_model(&self, data: &Dataset) -> Result<crate::fitted::FittedModel, MlError> {
        use crate::fitted::FittedModel;
        let pos_rate = validate_training(data)?;
        if pos_rate == 0.0 || pos_rate == 1.0 {
            return Ok(FittedModel::Constant(ConstantModel { proba: pos_rate }));
        }
        let d = data.n_features();
        let standardizer = Standardizer::fit(&data.x, d);
        let z: Vec<Vec<f64>> =
            data.x.iter().map(|r| standardizer.transform_row(r)).collect();
        let n = z.len() as f64;
        let mut weights = vec![0.0f64; d];
        let mut bias = 0.0f64;
        for _ in 0..self.iterations {
            let mut gw = vec![0.0f64; d];
            let mut gb = 0.0f64;
            for (row, &label) in z.iter().zip(&data.y) {
                let p = sigmoid(
                    weights.iter().zip(row).map(|(w, v)| w * v).sum::<f64>() + bias,
                );
                let err = p - f64::from(label);
                for (g, v) in gw.iter_mut().zip(row) {
                    *g += err * v;
                }
                gb += err;
            }
            for (w, g) in weights.iter_mut().zip(&gw) {
                *w -= self.learning_rate * (g / n + self.l2 * *w);
            }
            bias -= self.learning_rate * gb / n;
        }
        Ok(FittedModel::Linear(LinearModel { standardizer, weights, bias, sigmoid_link: true }))
    }
}

/// Ordinary least squares on 0/1 targets (ridge-stabilized), thresholded at
/// 0.5 — scikit-learn's `LinearRegression` used as a matcher, as the paper's
/// bake-off does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegressionLearner {
    /// Small ridge term for numerical stability of the normal equations.
    pub ridge: f64,
}

impl Default for LinearRegressionLearner {
    fn default() -> Self {
        LinearRegressionLearner { ridge: 1e-6 }
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// `A` is consumed. Returns `None` for (numerically) singular systems.
#[allow(clippy::needless_range_loop)] // pivoting logic is index-based by nature
pub(crate) fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot: largest |a[row][col]| among remaining rows.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in row + 1..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

impl Learner for LinearRegressionLearner {
    fn name(&self) -> String {
        "Linear Regression".to_string()
    }

    #[allow(clippy::needless_range_loop)] // symmetric-matrix assembly is index-based
    fn fit_model(&self, data: &Dataset) -> Result<crate::fitted::FittedModel, MlError> {
        use crate::fitted::FittedModel;
        let pos_rate = validate_training(data)?;
        if pos_rate == 0.0 || pos_rate == 1.0 {
            return Ok(FittedModel::Constant(ConstantModel { proba: pos_rate }));
        }
        let d = data.n_features();
        let standardizer = Standardizer::fit(&data.x, d);
        let z: Vec<Vec<f64>> =
            data.x.iter().map(|r| standardizer.transform_row(r)).collect();
        // Augmented design: [z | 1] → solve (XᵀX + λI) w = Xᵀ y.
        let dim = d + 1;
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (row, &label) in z.iter().zip(&data.y) {
            let y = f64::from(label);
            for i in 0..dim {
                let xi = if i < d { row[i] } else { 1.0 };
                xty[i] += xi * y;
                for j in i..dim {
                    let xj = if j < d { row[j] } else { 1.0 };
                    xtx[i][j] += xi * xj;
                }
            }
        }
        for i in 0..dim {
            for j in 0..i {
                xtx[i][j] = xtx[j][i];
            }
            xtx[i][i] += self.ridge.max(1e-12);
        }
        let w = solve_linear_system(xtx, xty)
            .ok_or_else(|| MlError::BadParameter("singular normal equations".to_string()))?;
        let (weights, bias) = (w[..d].to_vec(), w[d]);
        Ok(FittedModel::Linear(LinearModel { standardizer, weights, bias, sigmoid_link: false }))
    }
}

/// Linear SVM trained with the Pegasos stochastic sub-gradient method.
/// Probabilities are a sigmoid of the (unnormalized) margin, which is enough
/// for 0.5-threshold decisions and ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSvmLearner {
    /// Passes over the data.
    pub epochs: usize,
    /// Regularization parameter λ of the Pegasos objective.
    pub lambda: f64,
    /// RNG seed for example shuffling.
    pub seed: u64,
}

impl Default for LinearSvmLearner {
    fn default() -> Self {
        LinearSvmLearner { epochs: 40, lambda: 1e-3, seed: 11 }
    }
}

impl Learner for LinearSvmLearner {
    fn name(&self) -> String {
        "SVM".to_string()
    }

    fn fit_model(&self, data: &Dataset) -> Result<crate::fitted::FittedModel, MlError> {
        use crate::fitted::FittedModel;
        let pos_rate = validate_training(data)?;
        if pos_rate == 0.0 || pos_rate == 1.0 {
            return Ok(FittedModel::Constant(ConstantModel { proba: pos_rate }));
        }
        let d = data.n_features();
        let standardizer = Standardizer::fit(&data.x, d);
        let z: Vec<Vec<f64>> =
            data.x.iter().map(|r| standardizer.transform_row(r)).collect();
        let labels: Vec<f64> =
            data.y.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..z.len()).collect();
        let mut weights = vec![0.0f64; d];
        let mut bias = 0.0f64;
        let mut t = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f64);
                let margin = labels[i]
                    * (weights.iter().zip(&z[i]).map(|(w, v)| w * v).sum::<f64>() + bias);
                // Regularization shrink.
                let shrink = 1.0 - eta * self.lambda;
                for w in &mut weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, v) in weights.iter_mut().zip(&z[i]) {
                        *w += eta * labels[i] * v;
                    }
                    bias += eta * labels[i];
                }
            }
        }
        Ok(FittedModel::Linear(LinearModel { standardizer, weights, bias, sigmoid_link: true }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> Dataset {
        // matches cluster near (1, 1); non-matches near (0, 0)
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = i as f64 / n as f64;
            x.push(vec![1.0 - 0.2 * t, 0.9 + 0.1 * t]);
            y.push(true);
            x.push(vec![0.1 * t, 0.2 * t]);
            y.push(false);
        }
        Dataset::new(vec!["a".into(), "b".into()], x, y).unwrap()
    }

    #[test]
    fn logistic_separates() {
        let d = linearly_separable(30);
        let m = LogisticRegressionLearner::default().fit(&d).unwrap();
        assert!(m.predict(&[1.0, 1.0]));
        assert!(!m.predict(&[0.0, 0.0]));
        assert!(m.predict_proba(&[1.0, 1.0]) > 0.9);
    }

    #[test]
    fn linear_regression_separates() {
        let d = linearly_separable(30);
        let m = LinearRegressionLearner::default().fit(&d).unwrap();
        assert!(m.predict(&[1.0, 1.0]));
        assert!(!m.predict(&[0.0, 0.0]));
        let p = m.predict_proba(&[100.0, 100.0]);
        assert!((0.0..=1.0).contains(&p)); // clamped link
    }

    #[test]
    fn svm_separates() {
        let d = linearly_separable(30);
        let m = LinearSvmLearner::default().fit(&d).unwrap();
        assert!(m.predict(&[1.0, 1.0]));
        assert!(!m.predict(&[0.0, 0.0]));
    }

    #[test]
    fn single_class_degenerates_to_constant() {
        let d = Dataset::new(
            vec!["f".into()],
            vec![vec![0.0], vec![1.0]],
            vec![true, true],
        )
        .unwrap();
        for learner in [
            Box::new(LogisticRegressionLearner::default()) as Box<dyn Learner>,
            Box::new(LinearRegressionLearner::default()),
            Box::new(LinearSvmLearner::default()),
        ] {
            let m = learner.fit(&d).unwrap();
            assert!(m.predict(&[9.9]), "{} failed", learner.name());
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let d = Dataset::new(
            vec!["const".into(), "signal".into()],
            vec![vec![3.0, 0.0], vec![3.0, 1.0], vec![3.0, 0.1], vec![3.0, 0.9]],
            vec![false, true, false, true],
        )
        .unwrap();
        let m = LogisticRegressionLearner::default().fit(&d).unwrap();
        assert!(m.predict(&[3.0, 1.0]));
        assert!(!m.predict(&[3.0, 0.0]));
    }

    #[test]
    fn solve_linear_system_known() {
        // 2x + y = 5 ; x - y = 1  →  x = 2, y = 1
        let sol =
            solve_linear_system(vec![vec![2.0, 1.0], vec![1.0, -1.0]], vec![5.0, 1.0]).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-9);
        assert!((sol[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_detects_singularity() {
        let r = solve_linear_system(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]);
        assert!(r.is_none());
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn svm_deterministic_in_seed() {
        let d = linearly_separable(20);
        let m1 = LinearSvmLearner { seed: 5, ..Default::default() }.fit(&d).unwrap();
        let m2 = LinearSvmLearner { seed: 5, ..Default::default() }.fit(&d).unwrap();
        assert_eq!(m1.predict_proba(&[0.5, 0.5]), m2.predict_proba(&[0.5, 0.5]));
    }
}
