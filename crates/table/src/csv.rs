//! Hand-rolled RFC 4180 CSV reading and writing with type inference.
//!
//! The raw UMETRICS/USDA dumps arrive as CSV; this module loads them into
//! [`Table`]s. Parsing follows RFC 4180 (quoted fields, embedded commas,
//! doubled quotes, embedded newlines) plus the lenient conventions the real
//! dumps need: `\r\n` and `\n` line endings, empty fields and the literal
//! `NaN`/`NA`/`null` as missing values.
//!
//! Loading is two-phase: [`parse_records`] produces raw string records, and
//! [`read_str`] / [`read_path`] then apply per-column type inference — a
//! column becomes `Int`/`Float`/`Bool`/`Date` only if *every* non-missing
//! value parses as that type, otherwise it stays `Str` (mixed columns get
//! `Str`, never `Any`, mirroring how pandas reads these files as `object`).

use crate::error::TableError;
use crate::schema::{Column, DataType, Schema};
use crate::table::Table;
use crate::value::{Date, Value};
use std::io::Write;
use std::path::Path;

/// Sentinels treated as missing values during inference.
const MISSING: &[&str] = &["", "NaN", "nan", "NA", "N/A", "null", "NULL", "-"];

/// Parses CSV text into raw records (header handling is the caller's job).
///
/// Returns one `Vec<String>` per record. Fails on unbalanced quotes or
/// characters trailing a closing quote.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>, TableError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    // Tracks whether we have consumed any content for the current record,
    // so a trailing newline does not produce a phantom empty record.
    let mut record_started = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        // Only a separator or end-of-record may follow.
                        match chars.peek() {
                            Some(',') | Some('\n') | Some('\r') | None => {}
                            Some(other) => {
                                return Err(TableError::Csv {
                                    line,
                                    message: format!(
                                        "unexpected {other:?} after closing quote"
                                    ),
                                });
                            }
                        }
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() => {
                in_quotes = true;
                record_started = true;
            }
            '"' => {
                return Err(TableError::Csv {
                    line,
                    message: "quote inside unquoted field".to_string(),
                })
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                record_started = true;
            }
            '\r' => {
                // Swallow; `\n` (if present) terminates the record.
                if chars.peek() != Some(&'\n') {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    record_started = false;
                    line += 1;
                }
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                record_started = false;
                line += 1;
            }
            _ => {
                field.push(c);
                record_started = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv { line, message: "unterminated quoted field".to_string() });
    }
    if record_started || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

fn parse_typed(raw: &str, dtype: DataType) -> Value {
    if MISSING.contains(&raw.trim()) {
        return Value::Null;
    }
    let t = raw.trim();
    match dtype {
        DataType::Int => t.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        DataType::Float => t.parse::<f64>().map(Value::from).unwrap_or(Value::Null),
        DataType::Bool => match t.to_ascii_lowercase().as_str() {
            "true" | "t" | "yes" | "y" | "1" => Value::Bool(true),
            "false" | "f" | "no" | "n" | "0" => Value::Bool(false),
            _ => Value::Null,
        },
        DataType::Date => Date::parse(t).map(Value::Date).unwrap_or(Value::Null),
        DataType::Str | DataType::Any => Value::Str(raw.to_string()),
    }
}

fn looks_like(raw: &str, dtype: DataType) -> bool {
    let t = raw.trim();
    match dtype {
        DataType::Int => t.parse::<i64>().is_ok(),
        DataType::Float => t.parse::<f64>().is_ok_and(|f| !f.is_nan()),
        DataType::Bool => matches!(
            t.to_ascii_lowercase().as_str(),
            "true" | "t" | "yes" | "false" | "f" | "no"
        ),
        DataType::Date => Date::parse(t).is_some(),
        DataType::Str | DataType::Any => true,
    }
}

/// Infers the narrowest type that fits every non-missing value in a column.
/// Candidate order: `Int` → `Float` → `Date` → `Bool` → `Str`. Columns with
/// no non-missing values stay `Str`.
fn infer_column_type<'a>(values: impl Iterator<Item = &'a str> + Clone) -> DataType {
    for cand in [DataType::Int, DataType::Float, DataType::Date, DataType::Bool] {
        let mut any = false;
        let mut all = true;
        for v in values.clone() {
            if MISSING.contains(&v.trim()) {
                continue;
            }
            any = true;
            if !looks_like(v, cand) {
                all = false;
                break;
            }
        }
        if any && all {
            return cand;
        }
    }
    DataType::Str
}

/// Reads a table from CSV text. The first record is the header; column types
/// are inferred per-column across all data records.
///
/// Fully-empty records (blank lines, including the blank artifacts Windows
/// tools leave at the end of `\r\n` files) are skipped when the header has
/// more than one column — a blank line cannot be a valid record then. With
/// a single-column header an empty record stays a legitimate null row.
pub fn read_str(name: impl Into<String>, input: &str) -> Result<Table, TableError> {
    let records = parse_records(input)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or(TableError::Csv {
        line: 1,
        message: "empty input (no header)".to_string(),
    })?;
    let mut data: Vec<Vec<String>> = it.collect();
    if header.len() > 1 {
        data.retain(|rec| !(rec.len() == 1 && rec[0].is_empty()));
    }
    for (i, rec) in data.iter().enumerate() {
        if rec.len() != header.len() {
            return Err(TableError::Csv {
                line: i + 2,
                message: format!("record has {} fields, header has {}", rec.len(), header.len()),
            });
        }
    }
    let mut cols = Vec::with_capacity(header.len());
    for (ci, hname) in header.iter().enumerate() {
        let dtype = infer_column_type(data.iter().map(move |r| r[ci].as_str()));
        cols.push(Column::new(hname.trim(), dtype));
    }
    let schema = Schema::new(cols)?;
    let mut table = Table::new(name, schema.clone());
    for rec in &data {
        let row = rec
            .iter()
            .zip(schema.columns())
            .map(|(raw, col)| parse_typed(raw, col.dtype))
            .collect();
        table.push_row(row)?;
    }
    Ok(table)
}

/// Reads a table from a CSV file; the table is named after the file stem.
pub fn read_path(path: impl AsRef<Path>) -> Result<Table, TableError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_string();
    read_str(name, &text)
}

/// One malformed row diverted by [`read_quarantine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based line where the record starts in the input.
    pub line: usize,
    /// The raw record text, verbatim.
    pub raw: String,
    /// Why it was rejected.
    pub reason: String,
}

/// What [`read_quarantine`] produced: the table of accepted rows plus the
/// diverted rows with locations and reasons.
#[derive(Debug, Clone)]
pub struct QuarantineOutcome {
    /// The table built from the well-formed rows.
    pub table: Table,
    /// The malformed rows, in input order.
    pub quarantined: Vec<QuarantinedRow>,
}

impl QuarantineOutcome {
    /// Total data rows seen: accepted + quarantined.
    pub fn total_rows(&self) -> usize {
        self.table.n_rows() + self.quarantined.len()
    }
}

/// Splits input into logical records: newline-terminated, except that
/// newlines inside quoted fields (odd quote parity) continue the record.
/// Returns `(1-based start line, raw text)` per record, `\r\n` normalized
/// at record ends only.
fn logical_records(input: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut open = false;
    let mut start = 1usize;
    for (line_no, seg) in (1usize..).zip(input.split('\n')) {
        if !open {
            start = line_no;
        }
        let odd_quotes = seg.matches('"').count() % 2 == 1;
        if open ^ odd_quotes {
            // The record continues past this newline (inside quotes).
            cur.push_str(seg);
            cur.push('\n');
            open = true;
        } else {
            cur.push_str(seg.strip_suffix('\r').unwrap_or(seg));
            out.push((start, std::mem::take(&mut cur)));
            open = false;
        }
    }
    if open {
        // A quote left open at EOF: flush what accumulated so the caller
        // can quarantine it instead of losing the record.
        let trimmed = cur.strip_suffix('\n').unwrap_or(&cur).to_string();
        out.push((start, trimmed));
    }
    // `split` yields a final empty segment for newline-terminated input;
    // drop the resulting phantom empty record (but keep interior blanks,
    // which the caller classifies).
    if let Some(last) = out.last() {
        if last.1.is_empty() {
            out.pop();
        }
    }
    out
}

/// Reads a table from CSV text, diverting malformed rows into a quarantine
/// instead of failing the whole load — the degraded-mode ingest path for
/// dirty production slices.
///
/// A row is quarantined when it does not parse (stray or unterminated
/// quotes) or its field count disagrees with the header. Blank records are
/// skipped under the same rule as [`read_str`]. Column types are inferred
/// from the accepted rows only.
///
/// `max_quarantine_fraction` bounds how much corruption is tolerable: when
/// more than `⌊fraction × total⌋` rows are quarantined the whole load fails
/// with [`TableError::QuarantineOverflow`] — past that point the surviving
/// rows say little about the real data.
pub fn read_quarantine(
    name: impl Into<String>,
    input: &str,
    max_quarantine_fraction: f64,
) -> Result<QuarantineOutcome, TableError> {
    let records = logical_records(input);
    let mut it = records.into_iter();
    let (_, header_raw) = it.next().ok_or(TableError::Csv {
        line: 1,
        message: "empty input (no header)".to_string(),
    })?;
    let header = match parse_records(&header_raw)?.into_iter().next() {
        Some(h) => h,
        None => {
            return Err(TableError::Csv { line: 1, message: "empty input (no header)".to_string() })
        }
    };

    let mut accepted: Vec<Vec<String>> = Vec::new();
    let mut quarantined: Vec<QuarantinedRow> = Vec::new();
    for (line, raw) in it {
        if raw.is_empty() && header.len() > 1 {
            continue; // blank line, not a data row
        }
        match parse_records(&raw) {
            Ok(mut recs) => {
                let rec = if recs.is_empty() { vec![String::new()] } else { recs.remove(0) };
                if rec.len() == header.len() {
                    accepted.push(rec);
                } else {
                    quarantined.push(QuarantinedRow {
                        line,
                        raw,
                        reason: format!(
                            "record has {} fields, header has {}",
                            rec.len(),
                            header.len()
                        ),
                    });
                }
            }
            Err(TableError::Csv { line: rel, message }) => {
                quarantined.push(QuarantinedRow {
                    line: line + rel.saturating_sub(1),
                    raw,
                    reason: message,
                });
            }
            Err(other) => return Err(other),
        }
    }

    let total = accepted.len() + quarantined.len();
    let allowed = (max_quarantine_fraction.clamp(0.0, 1.0) * total as f64).floor() as usize;
    if quarantined.len() > allowed {
        return Err(TableError::QuarantineOverflow {
            quarantined: quarantined.len(),
            total,
            allowed,
        });
    }

    let mut cols = Vec::with_capacity(header.len());
    for (ci, hname) in header.iter().enumerate() {
        let dtype = infer_column_type(accepted.iter().map(move |r| r[ci].as_str()));
        cols.push(Column::new(hname.trim(), dtype));
    }
    let schema = Schema::new(cols)?;
    let mut table = Table::new(name, schema.clone());
    for rec in &accepted {
        let row = rec
            .iter()
            .zip(schema.columns())
            .map(|(raw, col)| parse_typed(raw, col.dtype))
            .collect();
        table.push_row(row)?;
    }
    Ok(QuarantineOutcome { table, quarantined })
}

fn escape_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a table as RFC 4180 CSV (header + rows, `\n` line endings,
/// nulls as empty fields).
pub fn write_str(table: &Table) -> String {
    let mut out = String::new();
    out.push_str(
        &table.schema().names().iter().map(|n| escape_field(n)).collect::<Vec<_>>().join(","),
    );
    out.push('\n');
    for row in table.rows() {
        let line: Vec<String> = row.iter().map(|v| escape_field(&v.render())).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Writes a table to a CSV file.
pub fn write_path(table: &Table, path: impl AsRef<Path>) -> Result<(), TableError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(write_str(table).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple() {
        let recs = parse_records("a,b\n1,2\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parses_quotes_commas_newlines() {
        let recs = parse_records("a,b\n\"x,y\",\"line1\nline2\"\n").unwrap();
        assert_eq!(recs[1][0], "x,y");
        assert_eq!(recs[1][1], "line1\nline2");
    }

    #[test]
    fn parses_doubled_quotes() {
        let recs = parse_records("t\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs[1][0], "say \"hi\"");
    }

    #[test]
    fn parses_crlf() {
        let recs = parse_records("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn no_phantom_trailing_record() {
        assert_eq!(parse_records("a\n1\n").unwrap().len(), 2);
        assert_eq!(parse_records("a\n1").unwrap().len(), 2);
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse_records("a\n\"oops\n").is_err());
    }

    #[test]
    fn rejects_text_after_closing_quote() {
        assert!(parse_records("a\n\"x\"y\n").is_err());
    }

    #[test]
    fn infers_types() {
        let t = read_str(
            "t",
            "id,score,title,start\n1,3.5,Alpha,2008-10-01\n2,NaN,Beta,10/1/08\n",
        )
        .unwrap();
        assert_eq!(t.schema().column("id").unwrap().dtype, DataType::Int);
        assert_eq!(t.schema().column("score").unwrap().dtype, DataType::Float);
        assert_eq!(t.schema().column("title").unwrap().dtype, DataType::Str);
        assert_eq!(t.schema().column("start").unwrap().dtype, DataType::Date);
        assert!(t.get(1, "score").unwrap().is_null());
        assert_eq!(t.get(1, "start").unwrap().as_date().unwrap().year, 2008);
    }

    #[test]
    fn mixed_column_stays_str() {
        let t = read_str("t", "x\n1\nabc\n").unwrap();
        assert_eq!(t.schema().column("x").unwrap().dtype, DataType::Str);
        assert_eq!(t.get(0, "x").unwrap().as_str(), Some("1"));
    }

    #[test]
    fn all_missing_column_stays_str() {
        let t = read_str("t", "x,y\nNaN,1\n,2\n").unwrap();
        assert_eq!(t.schema().column("x").unwrap().dtype, DataType::Str);
        assert!(t.get(0, "x").unwrap().is_null());
    }

    #[test]
    fn ragged_record_is_error() {
        assert!(read_str("t", "a,b\n1\n").is_err());
    }

    #[test]
    fn round_trip() {
        let src = "name,qty\n\"Smith, J\",3\n\"say \"\"hi\"\"\",\n";
        let t = read_str("t", src).unwrap();
        let out = write_str(&t);
        let t2 = read_str("t", &out).unwrap();
        assert_eq!(t.rows(), t2.rows());
    }

    #[test]
    fn write_renders_nulls_empty() {
        let t = read_str("t", "a,b\n1,\n").unwrap();
        assert_eq!(write_str(&t), "a,b\n1,\n");
    }

    #[test]
    fn quarantine_on_clean_input_matches_read_str() {
        let src = "id,note\n1,\"line1\nline2\"\n2,\"x,y\"\n3,plain\n";
        let strict = read_str("t", src).unwrap();
        let out = read_quarantine("t", src, 0.0).unwrap();
        assert!(out.quarantined.is_empty());
        assert_eq!(out.table.rows(), strict.rows());
        assert_eq!(out.table.schema(), strict.schema());
    }

    #[test]
    fn quarantine_diverts_ragged_and_bad_quote_rows() {
        let src = "a,b\n1,x\n2\nab\"\"cd,y\n3,z\n";
        let out = read_quarantine("t", src, 0.5).unwrap();
        assert_eq!(out.table.n_rows(), 2, "good rows survive");
        assert_eq!(out.quarantined.len(), 2);
        assert_eq!(out.total_rows(), 4, "accepted + quarantined = total");
        let ragged = &out.quarantined[0];
        assert_eq!(ragged.line, 3);
        assert_eq!(ragged.raw, "2");
        assert!(ragged.reason.contains("1 fields"), "reason: {}", ragged.reason);
        let badq = &out.quarantined[1];
        assert_eq!(badq.line, 4);
        assert!(badq.reason.contains("quote inside unquoted field"), "reason: {}", badq.reason);
    }

    #[test]
    fn quarantine_flushes_unterminated_quote_at_eof() {
        let src = "a,b\n1,x\n\"oops,2\n";
        let out = read_quarantine("t", src, 1.0).unwrap();
        assert_eq!(out.table.n_rows(), 1);
        assert_eq!(out.quarantined.len(), 1, "open-quote tail must not vanish");
        assert!(out.quarantined[0].reason.contains("unterminated"));
    }

    #[test]
    fn quarantine_overflow_aborts_the_load() {
        let src = "a,b\n1\n2\n3,x\n4,y\n";
        let err = read_quarantine("t", src, 0.25).unwrap_err();
        assert_eq!(
            err,
            TableError::QuarantineOverflow { quarantined: 2, total: 4, allowed: 1 }
        );
        // A laxer threshold accepts the same file.
        assert!(read_quarantine("t", src, 0.5).is_ok());
    }

    #[test]
    fn quarantine_skips_blank_lines_like_read_str() {
        let src = "a,b\n1,x\n\n2,y\n\n";
        let out = read_quarantine("t", src, 0.0).unwrap();
        assert_eq!(out.table.n_rows(), 2);
        assert!(out.quarantined.is_empty());
        // Single-column tables keep blank records as null rows.
        let single = read_quarantine("K", "K\n\n\n", 0.0).unwrap();
        assert_eq!(single.table.n_rows(), read_str("K", "K\n\n\n").unwrap().n_rows());
    }
}
