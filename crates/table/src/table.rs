//! The in-memory table and its relational operations.
//!
//! [`Table`] is a row-oriented, schema-validated table: the Rust analogue of
//! the pandas `DataFrame`s the case study manipulates. It deliberately offers
//! only the operations the EM pipeline needs — projection, selection,
//! renaming, derived columns, key validation, hash joins, unions, sampling —
//! each validated against the schema so that pre-processing mistakes surface
//! as typed errors instead of silent misalignment.

use crate::error::TableError;
use crate::schema::{Column, DataType, Schema};
use crate::value::Value;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A named, schema-validated, row-oriented table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

/// A borrowed row with by-name access.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    schema: &'a Schema,
    values: &'a [Value],
}

impl<'a> RowRef<'a> {
    /// The value in the named column; `None` when no such column exists.
    pub fn get(&self, column: &str) -> Option<&'a Value> {
        self.schema.index_of(column).map(|i| &self.values[i])
    }

    /// String payload of the named column (`None` for nulls/non-strings).
    pub fn str(&self, column: &str) -> Option<&'a str> {
        self.get(column).and_then(Value::as_str)
    }

    /// All values in schema order.
    pub fn values(&self) -> &'a [Value] {
        self.values
    }

    /// The row's schema.
    pub fn schema(&self) -> &'a Schema {
        self.schema
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table { name: name.into(), schema, rows: Vec::new() }
    }

    /// Creates a table and bulk-loads rows, validating each.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Vec<Value>>,
    ) -> Result<Table, TableError> {
        let mut t = Table::new(name, schema);
        t.rows.reserve(rows.len());
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Table name (used in reports and error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after checking arity and per-column types.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch { expected: self.schema.len(), got: row.len() });
        }
        for (col, v) in self.schema.columns().iter().zip(&row) {
            if let Some(t) = v.data_type() {
                if !col.dtype.accepts(t) {
                    return Err(TableError::TypeMismatch {
                        column: col.name.clone(),
                        expected: col.dtype.to_string(),
                        got: t.to_string(),
                    });
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// The raw rows in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Borrow row `i` with by-name access.
    pub fn row(&self, i: usize) -> Option<RowRef<'_>> {
        self.rows.get(i).map(|values| RowRef { schema: &self.schema, values })
    }

    /// Iterates rows with by-name access.
    pub fn iter(&self) -> impl Iterator<Item = RowRef<'_>> {
        self.rows.iter().map(move |values| RowRef { schema: &self.schema, values })
    }

    /// The value at `(row, column)`.
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let i = self.schema.index_of(column)?;
        self.rows.get(row).map(|r| &r[i])
    }

    /// Borrows an entire column, in row order.
    pub fn column_values(&self, column: &str) -> Result<Vec<&Value>, TableError> {
        let i = self.schema.require(column)?;
        Ok(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// Projects onto `names` (reordering allowed), keeping all rows.
    pub fn project(&self, names: &[&str]) -> Result<Table, TableError> {
        let idx: Vec<usize> =
            names.iter().map(|n| self.schema.require(n)).collect::<Result<_, _>>()?;
        let schema = self.schema.project(names)?;
        let rows = self
            .rows
            .iter()
            .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Table { name: self.name.clone(), schema, rows })
    }

    /// Keeps rows for which `pred` returns true.
    pub fn select<F: FnMut(RowRef<'_>) -> bool>(&self, mut pred: F) -> Table {
        let rows = self
            .rows
            .iter()
            .filter(|values| pred(RowRef { schema: &self.schema, values }))
            .cloned()
            .collect();
        Table { name: self.name.clone(), schema: self.schema.clone(), rows }
    }

    /// Renames one column.
    pub fn rename_column(&self, from: &str, to: &str) -> Result<Table, TableError> {
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.rename(from, to)?,
            rows: self.rows.clone(),
        })
    }

    /// Appends a derived column computed from each row.
    pub fn add_column<F: FnMut(RowRef<'_>) -> Value>(
        &self,
        name: &str,
        dtype: DataType,
        mut f: F,
    ) -> Result<Table, TableError> {
        let schema = self.schema.with_column(Column::new(name, dtype))?;
        let mut rows = Vec::with_capacity(self.rows.len());
        for values in &self.rows {
            let v = f(RowRef { schema: &self.schema, values });
            if let Some(t) = v.data_type() {
                if !dtype.accepts(t) {
                    return Err(TableError::TypeMismatch {
                        column: name.to_string(),
                        expected: dtype.to_string(),
                        got: t.to_string(),
                    });
                }
            }
            let mut row = values.clone();
            row.push(v);
            rows.push(row);
        }
        Ok(Table { name: self.name.clone(), schema, rows })
    }

    /// Removes one column.
    pub fn drop_column(&self, name: &str) -> Result<Table, TableError> {
        let i = self.schema.require(name)?;
        let schema = self.schema.without(name)?;
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut row = r.clone();
                row.remove(i);
                row
            })
            .collect();
        Ok(Table { name: self.name.clone(), schema, rows })
    }

    /// Prepends a sequential integer id column (0, 1, 2, …): the paper's
    /// `RecordId` step (Section 6, step 4.c).
    pub fn add_id_column(&self, name: &str) -> Result<Table, TableError> {
        let mut cols = vec![Column::new(name, DataType::Int)];
        cols.extend(self.schema.columns().iter().cloned());
        let schema = Schema::new(cols)?;
        let rows = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut row = Vec::with_capacity(r.len() + 1);
                row.push(Value::Int(i as i64));
                row.extend(r.iter().cloned());
                row
            })
            .collect();
        Ok(Table { name: self.name.clone(), schema, rows })
    }

    /// The first `n` rows.
    pub fn head(&self, n: usize) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// A uniform random sample of `n` rows without replacement (all rows if
    /// `n >= n_rows`), deterministic in `seed`. This is the sampling step the
    /// labeling rounds of Section 8 use.
    pub fn sample(&self, n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        idx.sort_unstable(); // keep original row order for readability
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: idx.into_iter().map(|i| self.rows[i].clone()).collect(),
        }
    }

    /// Sorts rows by a column using [`Value::total_cmp`] (nulls first).
    pub fn sort_by(&self, column: &str) -> Result<Table, TableError> {
        let i = self.schema.require(column)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| a[i].total_cmp(&b[i]));
        Ok(Table { name: self.name.clone(), schema: self.schema.clone(), rows })
    }

    /// Verifies that `column` is a key: non-null and unique. This is the
    /// Section 6 validation that `UniqueAwardNumber` / `AccessionNumber`
    /// really are keys.
    pub fn check_key(&self, column: &str) -> Result<(), TableError> {
        let i = self.schema.require(column)?;
        let mut seen = HashSet::with_capacity(self.rows.len());
        for r in &self.rows {
            if r[i].is_null() {
                return Err(TableError::KeyViolation {
                    column: column.to_string(),
                    detail: "null value".to_string(),
                });
            }
            if !seen.insert(r[i].dedup_key()) {
                return Err(TableError::KeyViolation {
                    column: column.to_string(),
                    detail: format!("duplicate value {:?}", r[i].render()),
                });
            }
        }
        Ok(())
    }

    /// Verifies that every non-null value of `column` appears in `parent`'s
    /// `parent_key` column: the Section 6 foreign-key validation.
    pub fn check_foreign_key(
        &self,
        column: &str,
        parent: &Table,
        parent_key: &str,
    ) -> Result<(), TableError> {
        let i = self.schema.require(column)?;
        let pi = parent.schema.require(parent_key)?;
        let keys: HashSet<String> =
            parent.rows.iter().map(|r| r[pi].dedup_key()).collect();
        for r in &self.rows {
            if !r[i].is_null() && !keys.contains(&r[i].dedup_key()) {
                return Err(TableError::KeyViolation {
                    column: column.to_string(),
                    detail: format!(
                        "value {:?} has no match in {}.{}",
                        r[i].render(),
                        parent.name,
                        parent_key
                    ),
                });
            }
        }
        Ok(())
    }

    /// Inner hash join on `self.on_left == other.on_right`. Output columns
    /// are all of `self`'s followed by all of `other`'s; name collisions on
    /// the right are disambiguated with the `right_prefix`.
    pub fn inner_join(
        &self,
        other: &Table,
        on_left: &str,
        on_right: &str,
        right_prefix: &str,
    ) -> Result<Table, TableError> {
        let li = self.schema.require(on_left)?;
        let ri = other.schema.require(on_right)?;

        let mut cols = self.schema.columns().to_vec();
        for c in other.schema.columns() {
            let name = if self.schema.contains(&c.name) {
                format!("{right_prefix}{}", c.name)
            } else {
                c.name.clone()
            };
            cols.push(Column::new(name, c.dtype));
        }
        let schema = Schema::new(cols)?;

        // Build side: index the smaller conceptual build input (right).
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, r) in other.rows.iter().enumerate() {
            if !r[ri].is_null() {
                index.entry(r[ri].dedup_key()).or_default().push(j);
            }
        }

        let mut rows = Vec::new();
        for l in &self.rows {
            if l[li].is_null() {
                continue;
            }
            if let Some(matches) = index.get(&l[li].dedup_key()) {
                for &j in matches {
                    let mut row = Vec::with_capacity(schema.len());
                    row.extend(l.iter().cloned());
                    row.extend(other.rows[j].iter().cloned());
                    rows.push(row);
                }
            }
        }
        Ok(Table { name: format!("{}⋈{}", self.name, other.name), schema, rows })
    }

    /// Concatenates two tables with identical schemas.
    pub fn union(&self, other: &Table) -> Result<Table, TableError> {
        if self.schema != other.schema {
            return Err(TableError::SchemaMismatch(format!(
                "{} vs {}",
                self.schema, other.schema
            )));
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(Table { name: self.name.clone(), schema: self.schema.clone(), rows })
    }

    /// Groups rows by `key` and concatenates the string renderings of
    /// `value_col` within each group, separated by `sep`, in row order.
    /// Nulls are skipped. This is the Section 6 step that folds multiple
    /// employee names per award into one `|`-separated field.
    pub fn group_concat(
        &self,
        key: &str,
        value_col: &str,
        sep: &str,
    ) -> Result<HashMap<String, String>, TableError> {
        let ki = self.schema.require(key)?;
        let vi = self.schema.require(value_col)?;
        let mut out: HashMap<String, String> = HashMap::new();
        for r in &self.rows {
            if r[ki].is_null() || r[vi].is_null() {
                continue;
            }
            let entry = out.entry(r[ki].render()).or_default();
            if !entry.is_empty() {
                entry.push_str(sep);
            }
            entry.push_str(&r[vi].render());
        }
        Ok(out)
    }

    /// Distinct non-null rendered values of a column, with counts, most
    /// frequent first (ties broken by value for determinism).
    pub fn value_counts(&self, column: &str) -> Result<Vec<(String, usize)>, TableError> {
        let i = self.schema.require(column)?;
        let mut counts: HashMap<String, usize> = HashMap::new();
        for r in &self.rows {
            if !r[i].is_null() {
                *counts.entry(r[i].render()).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }
}

impl fmt::Display for Table {
    /// Compact preview: name, dimensions, header, and up to 5 rows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} rows x {} cols]", self.name, self.n_rows(), self.n_cols())?;
        writeln!(f, "  {}", self.schema.names().join(" | "))?;
        for r in self.rows.iter().take(5) {
            let cells: Vec<String> = r.iter().map(Value::render).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.rows.len() > 5 {
            writeln!(f, "  … {} more rows", self.rows.len() - 5)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let schema = Schema::of(&[
            ("Name", DataType::Str),
            ("City", DataType::Str),
            ("Age", DataType::Int),
        ]);
        Table::from_rows(
            "people",
            schema,
            vec![
                vec!["Dave Smith".into(), "Madison".into(), Value::Int(40)],
                vec!["Joe Wilson".into(), "San Jose".into(), Value::Int(35)],
                vec!["Dan Smith".into(), "Middleton".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_row_validates_arity() {
        let mut t = people();
        let e = t.push_row(vec!["X".into()]).unwrap_err();
        assert!(matches!(e, TableError::ArityMismatch { expected: 3, got: 1 }));
    }

    #[test]
    fn push_row_validates_types() {
        let mut t = people();
        let e = t.push_row(vec!["X".into(), "Y".into(), "not an int".into()]).unwrap_err();
        assert!(matches!(e, TableError::TypeMismatch { .. }));
    }

    #[test]
    fn nulls_fit_any_column() {
        let mut t = people();
        t.push_row(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn project_and_rename() {
        let t = people().project(&["Age", "Name"]).unwrap();
        assert_eq!(t.schema().names(), vec!["Age", "Name"]);
        assert_eq!(t.get(0, "Name").unwrap().as_str(), Some("Dave Smith"));
        let t2 = t.rename_column("Name", "FullName").unwrap();
        assert!(t2.schema().contains("FullName"));
    }

    #[test]
    fn select_filters() {
        let t = people().select(|r| r.str("City").is_some_and(|c| c.starts_with('M')));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn add_column_derives() {
        let t = people()
            .add_column("Upper", DataType::Str, |r| {
                r.str("Name").map(|s| s.to_uppercase()).into()
            })
            .unwrap();
        assert_eq!(t.get(0, "Upper").unwrap().as_str(), Some("DAVE SMITH"));
    }

    #[test]
    fn add_id_column_prepends() {
        let t = people().add_id_column("RecordId").unwrap();
        assert_eq!(t.schema().names()[0], "RecordId");
        assert_eq!(t.get(2, "RecordId").unwrap().as_int(), Some(2));
    }

    #[test]
    fn sample_is_deterministic_and_bounded() {
        let t = people();
        let a = t.sample(2, 7);
        let b = t.sample(2, 7);
        assert_eq!(a, b);
        assert_eq!(a.n_rows(), 2);
        assert_eq!(t.sample(100, 7).n_rows(), 3);
    }

    #[test]
    fn check_key_detects_duplicates_and_nulls() {
        let t = people();
        assert!(t.check_key("Name").is_ok());
        assert!(t.check_key("Age").is_err()); // contains a null
        let mut dup = people();
        dup.push_row(vec!["Dave Smith".into(), "Verona".into(), Value::Int(1)]).unwrap();
        assert!(dup.check_key("Name").is_err());
    }

    #[test]
    fn foreign_key_checks() {
        let parent = people();
        let schema = Schema::of(&[("Who", DataType::Str)]);
        let child =
            Table::from_rows("c", schema.clone(), vec![vec!["Dan Smith".into()], vec![Value::Null]])
                .unwrap();
        assert!(child.check_foreign_key("Who", &parent, "Name").is_ok());
        let bad = Table::from_rows("c", schema, vec![vec!["Nobody".into()]]).unwrap();
        assert!(bad.check_foreign_key("Who", &parent, "Name").is_err());
    }

    #[test]
    fn inner_join_matches_and_prefixes() {
        let orders = Table::from_rows(
            "orders",
            Schema::of(&[("Name", DataType::Str), ("Total", DataType::Int)]),
            vec![
                vec!["Dave Smith".into(), Value::Int(10)],
                vec!["Dave Smith".into(), Value::Int(20)],
                vec!["Nobody".into(), Value::Int(30)],
            ],
        )
        .unwrap();
        let j = people().inner_join(&orders, "Name", "Name", "r_").unwrap();
        assert_eq!(j.n_rows(), 2); // Dave Smith twice, Nobody drops
        assert!(j.schema().contains("r_Name"));
        assert!(j.schema().contains("Total"));
    }

    #[test]
    fn join_skips_null_keys() {
        let l = Table::from_rows(
            "l",
            Schema::of(&[("K", DataType::Str)]),
            vec![vec![Value::Null], vec!["a".into()]],
        )
        .unwrap();
        let r = Table::from_rows(
            "r",
            Schema::of(&[("K2", DataType::Str)]),
            vec![vec![Value::Null], vec!["a".into()]],
        )
        .unwrap();
        let j = l.inner_join(&r, "K", "K2", "r_").unwrap();
        assert_eq!(j.n_rows(), 1);
    }

    #[test]
    fn union_requires_equal_schema() {
        let a = people();
        let b = people();
        assert_eq!(a.union(&b).unwrap().n_rows(), 6);
        let c = people().project(&["Name"]).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn group_concat_joins_in_order() {
        let t = Table::from_rows(
            "emp",
            Schema::of(&[("Award", DataType::Str), ("Employee", DataType::Str)]),
            vec![
                vec!["A1".into(), "Smith, J".into()],
                vec!["A1".into(), "Doe, K".into()],
                vec!["A2".into(), Value::Null],
                vec!["A2".into(), "Roe, L".into()],
            ],
        )
        .unwrap();
        let g = t.group_concat("Award", "Employee", "|").unwrap();
        assert_eq!(g["A1"], "Smith, J|Doe, K");
        assert_eq!(g["A2"], "Roe, L");
    }

    #[test]
    fn value_counts_sorted() {
        let t = people();
        let vc = t.value_counts("City").unwrap();
        assert_eq!(vc.len(), 3);
        assert!(vc.iter().all(|(_, c)| *c == 1));
    }

    #[test]
    fn sort_by_puts_nulls_first() {
        let t = people().sort_by("Age").unwrap();
        assert!(t.get(0, "Age").unwrap().is_null());
        assert_eq!(t.get(1, "Age").unwrap().as_int(), Some(35));
    }
}
