//! Error type for table operations.

use std::fmt;

/// Errors raised by schema and table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A schema was built with two columns of the same name.
    DuplicateColumn(String),
    /// A named column does not exist.
    NoSuchColumn(String),
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Columns the schema expects.
        expected: usize,
        /// Values the row supplied.
        got: usize,
    },
    /// A value's type is not accepted by its column.
    TypeMismatch {
        /// Column that rejected the value.
        column: String,
        /// The column's declared type (display form).
        expected: String,
        /// The offending value's type (display form).
        got: String,
    },
    /// A column expected to be a key contains duplicates or nulls.
    KeyViolation {
        /// The key column.
        column: String,
        /// Human-readable description of the violating value.
        detail: String,
    },
    /// Two tables disagree on schema where they must agree (union).
    SchemaMismatch(String),
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line where parsing failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Quarantine ingest diverted more rows than the caller allows — the
    /// file is too corrupt to trust the surviving rows.
    QuarantineOverflow {
        /// Rows quarantined.
        quarantined: usize,
        /// Total data rows seen (accepted + quarantined).
        total: usize,
        /// The configured ceiling, in rows (`fraction × total`, rounded
        /// down).
        allowed: usize,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateColumn(c) => write!(f, "duplicate column name: {c:?}"),
            TableError::NoSuchColumn(c) => write!(f, "no such column: {c:?}"),
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} columns")
            }
            TableError::TypeMismatch { column, expected, got } => {
                write!(f, "column {column:?} expects {expected} but got {got}")
            }
            TableError::KeyViolation { column, detail } => {
                write!(f, "key violation on column {column:?}: {detail}")
            }
            TableError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            TableError::Csv { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            TableError::QuarantineOverflow { quarantined, total, allowed } => write!(
                f,
                "quarantined {quarantined} of {total} rows, more than the {allowed} allowed"
            ),
            TableError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}
