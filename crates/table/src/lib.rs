//! # em-table — typed in-memory tables for entity matching
//!
//! The data substrate of the UMETRICS EM reproduction: a small, row-oriented
//! table library with schema validation, CSV I/O with type inference, the
//! relational operations the pre-processing stage needs (project, select,
//! rename, derive, join, union, sample), key/foreign-key validation, and
//! pandas-profiling-style column summaries.
//!
//! ```
//! use em_table::{csv, profile};
//!
//! let t = csv::read_str("awards", "AwardNumber,Title\nW1,Alpha\nW2,Beta\n").unwrap();
//! assert_eq!(t.n_rows(), 2);
//! t.check_key("AwardNumber").unwrap();
//! let p = profile::profile_table(&t);
//! assert!(p.columns[0].looks_like_key());
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod csv;
pub mod error;
pub mod profile;
pub mod schema;
pub mod table;
pub mod value;

pub use error::TableError;
pub use schema::{Column, DataType, Schema};
pub use table::{RowRef, Table};
pub use value::{Date, Value};
