//! Cell values and the calendar-date scalar used throughout the toolkit.
//!
//! A [`Value`] is one cell of a [`Table`](crate::Table). The variants mirror
//! the column types the UMETRICS/USDA case study needs: free text, integers,
//! floats, booleans, calendar dates, and missing data (`Null`). Values are
//! self-describing so heterogeneous CSV data can be loaded first and typed
//! later (see [`crate::csv`] for inference).

use std::cmp::Ordering;
use std::fmt;

/// A calendar date with no time component.
///
/// The case-study data carries dates in several textual shapes
/// (`1997-07-01`, `10/1/08`, `8/15/2008`); [`Date::parse`] accepts all of
/// them. Only structural validity is enforced (month 1–12, day 1–31): the
/// raw data this models is itself dirty, and EM pipelines must tolerate
/// values like `2/30/09` rather than reject whole rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Date {
    /// Four-digit year.
    pub year: i32,
    /// Month of year, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl Date {
    /// Creates a date, validating month and day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if (1..=12).contains(&month) && (1..=31).contains(&day) {
            Some(Date { year, month, day })
        } else {
            None
        }
    }

    /// Parses a date from the textual shapes present in the raw data:
    /// `YYYY-MM-DD`, `M/D/YYYY`, and `M/D/YY` (two-digit years are pivoted
    /// at 70: `69` → 2069 is wrong for this domain, so `00–69` maps to
    /// 2000–2069 and `70–99` to 1970–1999).
    pub fn parse(s: &str) -> Option<Date> {
        let s = s.trim();
        if let Some((y, rest)) = s.split_once('-') {
            let (m, d) = rest.split_once('-')?;
            return Date::new(y.parse().ok()?, m.parse().ok()?, d.parse().ok()?);
        }
        if let Some((m, rest)) = s.split_once('/') {
            let (d, y) = rest.split_once('/')?;
            let month: u8 = m.parse().ok()?;
            let day: u8 = d.parse().ok()?;
            let year_raw: i32 = y.parse().ok()?;
            let year = match y.len() {
                2 if year_raw < 70 => 2000 + year_raw,
                2 => 1900 + year_raw,
                _ => year_raw,
            };
            return Date::new(year, month, day);
        }
        None
    }

    /// Days since 0000-03-01 using a proleptic-Gregorian day count.
    /// Monotone in (year, month, day), which is all date arithmetic in the
    /// pipeline needs (differences in days/years).
    pub fn day_number(&self) -> i64 {
        // Shift so the year starts in March; leap days then fall at the end.
        let (y, m) = if self.month <= 2 {
            (self.year as i64 - 1, self.month as i64 + 12)
        } else {
            (self.year as i64, self.month as i64)
        };
        365 * y + y.div_euclid(4) - y.div_euclid(100) + y.div_euclid(400)
            + (153 * (m - 3) + 2) / 5
            + self.day as i64
    }

    /// Whole days between `self` and `other` (positive when `self` is later).
    pub fn days_between(&self, other: &Date) -> i64 {
        self.day_number() - other.day_number()
    }

    /// Approximate year difference, as used by the paper's "transaction
    /// dates within a difference of a few years" labeling fix (Section 8).
    pub fn years_between(&self, other: &Date) -> f64 {
        self.days_between(other) as f64 / 365.25
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// One table cell.
///
/// `Null` models missing data (empty CSV fields, `NaN` in the raw dumps).
/// Equality treats `Null == Null` as true so hashing and deduplication work;
/// code that needs SQL-style null semantics should test [`Value::is_null`]
/// explicitly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing / not applicable.
    Null,
    /// Free text.
    Str(String),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` payloads are normalised to `Null` at parse time.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: ints and floats coerce to `f64`; other types are `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats are not silently truncated).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The [`DataType`](crate::schema::DataType) of this value, or `None`
    /// for `Null` (nulls are typeless and fit any column).
    pub fn data_type(&self) -> Option<crate::schema::DataType> {
        use crate::schema::DataType;
        match self {
            Value::Null => None,
            Value::Str(_) => Some(DataType::Str),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Renders the value the way the CSV writer and reports do: `Null`
    /// becomes the empty string, everything else its display form.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            other => other.to_string(),
        }
    }

    /// Total order used for sorting and medians: `Null` sorts first, then
    /// values order within their type, then across types by type tag. This
    /// gives profiling a deterministic order even over mixed columns.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 2, // ints and floats compare numerically
                Value::Date(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (a, b) if tag(a) == tag(b) && tag(a) == 2 => {
                let (x, y) = (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0));
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }

    /// Stable key for hashing/deduplication. Floats use their bit pattern,
    /// so `-0.0` and `0.0` are distinct keys (acceptable for EM data, where
    /// floats come from parsed text and are reproduced exactly).
    pub fn dedup_key(&self) -> String {
        match self {
            Value::Null => "\u{0}N".to_string(),
            Value::Str(s) => format!("S{s}"),
            Value::Int(i) => format!("I{i}"),
            Value::Float(f) => format!("F{:x}", f.to_bits()),
            Value::Bool(b) => format!("B{b}"),
            Value::Date(d) => format!("D{d}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parses_iso() {
        assert_eq!(Date::parse("1997-07-01"), Date::new(1997, 7, 1));
    }

    #[test]
    fn date_parses_us_short_year() {
        assert_eq!(Date::parse("10/1/08"), Date::new(2008, 10, 1));
        assert_eq!(Date::parse("10/1/98"), Date::new(1998, 10, 1));
    }

    #[test]
    fn date_parses_us_long_year() {
        assert_eq!(Date::parse("8/15/2008"), Date::new(2008, 8, 15));
    }

    #[test]
    fn date_rejects_garbage() {
        assert_eq!(Date::parse("not a date"), None);
        assert_eq!(Date::parse("2008-13-01"), None);
        assert_eq!(Date::parse(""), None);
    }

    #[test]
    fn date_day_number_is_monotone() {
        let a = Date::new(2008, 10, 1).unwrap();
        let b = Date::new(2008, 10, 2).unwrap();
        let c = Date::new(2009, 1, 1).unwrap();
        assert_eq!(b.days_between(&a), 1);
        assert!(c.day_number() > b.day_number());
    }

    #[test]
    fn date_years_between() {
        let a = Date::new(2011, 8, 14).unwrap();
        let b = Date::new(2008, 8, 15).unwrap();
        let y = a.years_between(&b);
        assert!((y - 3.0).abs() < 0.01, "{y}");
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert!(Value::from(f64::NAN).is_null());
    }

    #[test]
    fn value_total_order_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn value_cross_type_numeric_order() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn dedup_key_distinguishes_types() {
        assert_ne!(Value::Str("1".into()).dedup_key(), Value::Int(1).dedup_key());
        assert_eq!(Value::Null.dedup_key(), Value::Null.dedup_key());
    }

    #[test]
    fn render_null_empty() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Str("hi".into()).render(), "hi");
    }

    #[test]
    fn option_into_value() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(5i64)), Value::Int(5));
    }
}
