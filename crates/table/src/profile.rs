//! Data profiling: the "understand the data" step of Section 4.
//!
//! The case study begins by browsing sample rows and per-column statistics
//! (unique counts, missing counts, mean, median, …) with pandas-profiling.
//! [`profile_table`] computes the same summaries for a [`Table`], and
//! [`TableProfile`]'s `Display` renders the report the EM team would read.

use crate::table::Table;
use crate::value::Value;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Declared type (display form).
    pub dtype: String,
    /// Total rows.
    pub count: usize,
    /// Missing (null) values.
    pub missing: usize,
    /// Distinct non-null values.
    pub unique: usize,
    /// Mean of numeric values, when the column has any.
    pub mean: Option<f64>,
    /// Median of numeric values, when the column has any.
    pub median: Option<f64>,
    /// Minimum non-null value, rendered.
    pub min: Option<String>,
    /// Maximum non-null value, rendered.
    pub max: Option<String>,
    /// Up to three most frequent values with counts.
    pub top_values: Vec<(String, usize)>,
}

impl ColumnProfile {
    /// Missing fraction in `[0, 1]` (0 for an empty table).
    pub fn missing_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.missing as f64 / self.count as f64
        }
    }

    /// True when every non-null value is distinct — the quick key heuristic
    /// the team applies before running the strict key check.
    pub fn looks_like_key(&self) -> bool {
        self.missing == 0 && self.count > 0 && self.unique == self.count
    }
}

/// Profile of a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableProfile {
    /// Table name.
    pub table: String,
    /// Rows in the table.
    pub n_rows: usize,
    /// Columns in the table.
    pub n_cols: usize,
    /// Per-column profiles, in schema order.
    pub columns: Vec<ColumnProfile>,
}

/// Computes per-column summary statistics.
pub fn profile_table(table: &Table) -> TableProfile {
    let columns = table
        .schema()
        .columns()
        .iter()
        .filter_map(|col| {
            // Columns come from the table's own schema, so the lookup
            // cannot fail; `.ok()` only avoids a panic path.
            let values: Vec<&Value> = table.column_values(&col.name).ok()?;
            Some(profile_column(&col.name, &col.dtype.to_string(), &values))
        })
        .collect();
    TableProfile {
        table: table.name().to_string(),
        n_rows: table.n_rows(),
        n_cols: table.n_cols(),
        columns,
    }
}

fn profile_column(name: &str, dtype: &str, values: &[&Value]) -> ColumnProfile {
    let count = values.len();
    let missing = values.iter().filter(|v| v.is_null()).count();

    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for v in values.iter().filter(|v| !v.is_null()) {
        *counts.entry(v.dedup_key()).or_insert(0) += 1;
    }
    let unique = counts.len();

    let mut numeric: Vec<f64> = values.iter().filter_map(|v| v.as_f64()).collect();
    let (mean, median) = if numeric.is_empty() {
        (None, None)
    } else {
        let mean = numeric.iter().sum::<f64>() / numeric.len() as f64;
        numeric.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = numeric.len() / 2;
        let median = if numeric.len().is_multiple_of(2) {
            (numeric[mid - 1] + numeric[mid]) / 2.0
        } else {
            numeric[mid]
        };
        (Some(mean), Some(median))
    };

    let mut non_null: Vec<&&Value> = values.iter().filter(|v| !v.is_null()).collect();
    non_null.sort_by(|a, b| a.total_cmp(b));
    let min = non_null.first().map(|v| v.render());
    let max = non_null.last().map(|v| v.render());

    // Most frequent rendered values (ties broken lexicographically).
    let mut rendered: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for v in values.iter().filter(|v| !v.is_null()) {
        *rendered.entry(v.render()).or_insert(0) += 1;
    }
    let mut top: Vec<(String, usize)> = rendered.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    top.truncate(3);

    ColumnProfile {
        name: name.to_string(),
        dtype: dtype.to_string(),
        count,
        missing,
        unique,
        mean,
        median,
        min,
        max,
        top_values: top,
    }
}

impl std::fmt::Display for TableProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Profile of {} ({} rows, {} cols)", self.table, self.n_rows, self.n_cols)?;
        writeln!(
            f,
            "  {:<28} {:<6} {:>8} {:>8} {:>10} {:>10}",
            "column", "type", "missing", "unique", "mean", "median"
        )?;
        for c in &self.columns {
            let fmt_opt = |o: Option<f64>| o.map(|v| format!("{v:.2}")).unwrap_or_default();
            writeln!(
                f,
                "  {:<28} {:<6} {:>8} {:>8} {:>10} {:>10}",
                c.name,
                c.dtype,
                c.missing,
                c.unique,
                fmt_opt(c.mean),
                fmt_opt(c.median)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_str;

    fn sample() -> Table {
        read_str(
            "grants",
            "id,amount,title\n1,10,Alpha\n2,30,Beta\n3,,Alpha\n4,20,\n",
        )
        .unwrap()
    }

    #[test]
    fn counts_missing_and_unique() {
        let p = profile_table(&sample());
        let amount = &p.columns[1];
        assert_eq!(amount.count, 4);
        assert_eq!(amount.missing, 1);
        assert_eq!(amount.unique, 3);
        let title = &p.columns[2];
        assert_eq!(title.unique, 2);
        assert_eq!(title.missing, 1);
    }

    #[test]
    fn mean_and_median_ignore_nulls() {
        let p = profile_table(&sample());
        let amount = &p.columns[1];
        assert_eq!(amount.mean, Some(20.0));
        assert_eq!(amount.median, Some(20.0));
        let title = &p.columns[2];
        assert_eq!(title.mean, None);
    }

    #[test]
    fn min_max_rendered() {
        let p = profile_table(&sample());
        assert_eq!(p.columns[1].min.as_deref(), Some("10"));
        assert_eq!(p.columns[1].max.as_deref(), Some("30"));
        assert_eq!(p.columns[2].min.as_deref(), Some("Alpha"));
    }

    #[test]
    fn key_heuristic() {
        let p = profile_table(&sample());
        assert!(p.columns[0].looks_like_key()); // id
        assert!(!p.columns[2].looks_like_key()); // title: dup + missing
    }

    #[test]
    fn top_values_ranked() {
        let p = profile_table(&sample());
        assert_eq!(p.columns[2].top_values[0], ("Alpha".to_string(), 2));
    }

    #[test]
    fn empty_table_profiles() {
        let t = Table::new("e", crate::schema::Schema::of_strings(&["a"]));
        let p = profile_table(&t);
        assert_eq!(p.n_rows, 0);
        assert_eq!(p.columns[0].missing_rate(), 0.0);
        assert!(!p.columns[0].looks_like_key());
    }

    #[test]
    fn display_renders() {
        let p = profile_table(&sample());
        let s = p.to_string();
        assert!(s.contains("grants"));
        assert!(s.contains("amount"));
    }
}
