//! Column metadata: data types, columns, and schemas.

use crate::error::TableError;
use std::collections::HashMap;
use std::fmt;

/// The declared type of a column.
///
/// `Any` admits mixed or unknown content; CSV inference assigns it when a
/// column's non-null values disagree on a narrower type, which is common in
/// the dirty administrative data this toolkit targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Free text.
    Str,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Calendar date.
    Date,
    /// Mixed / unknown.
    Any,
}

impl DataType {
    /// Whether a value of type `other` may be stored in a column of `self`.
    /// `Any` accepts everything; `Float` accepts `Int` (lossless widening).
    pub fn accepts(&self, other: DataType) -> bool {
        *self == DataType::Any
            || *self == other
            || (*self == DataType::Float && other == DataType::Int)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Str => "str",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
            DataType::Date => "date",
            DataType::Any => "any",
        };
        write!(f, "{s}")
    }
}

/// One column: a name and a declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within a schema.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column { name: name.into(), dtype }
    }
}

/// An ordered set of uniquely named columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from columns; fails on duplicate names.
    pub fn new(columns: Vec<Column>) -> Result<Schema, TableError> {
        let mut index = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if index.insert(c.name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns, index })
    }

    /// Convenience: all-`Str` schema from names (the shape CSV data starts
    /// in); panics on duplicate names — for literal schemas only.
    #[allow(clippy::expect_used)] // panicking on duplicates is the documented contract
    pub fn of_strings(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|n| Column::new(*n, DataType::Str)).collect())
            .expect("caller guarantees unique names")
    }

    /// Convenience: schema from `(name, dtype)` pairs; panics on duplicates,
    /// for use in code that constructs literal schemas.
    #[allow(clippy::expect_used)] // panicking on duplicates is the documented contract
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("caller guarantees unique names")
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Index of a column, as an error-carrying lookup.
    pub fn require(&self, name: &str) -> Result<usize, TableError> {
        self.index_of(name).ok_or_else(|| TableError::NoSuchColumn(name.to_string()))
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// True when a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// New schema keeping only `names`, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, TableError> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            cols.push(self.columns[self.require(n)?].clone());
        }
        Schema::new(cols)
    }

    /// New schema with one column renamed.
    pub fn rename(&self, from: &str, to: &str) -> Result<Schema, TableError> {
        let i = self.require(from)?;
        let mut cols = self.columns.clone();
        cols[i].name = to.to_string();
        Schema::new(cols)
    }

    /// New schema with a column appended.
    pub fn with_column(&self, col: Column) -> Result<Schema, TableError> {
        let mut cols = self.columns.clone();
        cols.push(col);
        Schema::new(cols)
    }

    /// New schema without the named column.
    pub fn without(&self, name: &str) -> Result<Schema, TableError> {
        let i = self.require(name)?;
        let mut cols = self.columns.clone();
        cols.remove(i);
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.columns.iter().map(|c| format!("{}: {}", c.name, c.dtype)).collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Str),
            Column::new("a", DataType::Int),
        ]);
        assert!(matches!(r, Err(TableError::DuplicateColumn(_))));
    }

    #[test]
    fn lookup_by_name() {
        let s = Schema::of(&[("a", DataType::Str), ("b", DataType::Int)]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.require("z").is_err());
    }

    #[test]
    fn project_reorders() {
        let s = Schema::of(&[("a", DataType::Str), ("b", DataType::Int), ("c", DataType::Date)]);
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert_eq!(p.column("c").unwrap().dtype, DataType::Date);
    }

    #[test]
    fn rename_preserves_type_and_position() {
        let s = Schema::of(&[("a", DataType::Str), ("b", DataType::Int)]);
        let r = s.rename("b", "beta").unwrap();
        assert_eq!(r.index_of("beta"), Some(1));
        assert_eq!(r.column("beta").unwrap().dtype, DataType::Int);
        assert!(!r.contains("b"));
    }

    #[test]
    fn rename_to_existing_name_fails() {
        let s = Schema::of(&[("a", DataType::Str), ("b", DataType::Int)]);
        assert!(s.rename("b", "a").is_err());
    }

    #[test]
    fn float_accepts_int() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(DataType::Any.accepts(DataType::Date));
    }

    #[test]
    fn with_and_without_column() {
        let s = Schema::of(&[("a", DataType::Str)]);
        let s2 = s.with_column(Column::new("b", DataType::Int)).unwrap();
        assert_eq!(s2.len(), 2);
        let s3 = s2.without("a").unwrap();
        assert_eq!(s3.names(), vec!["b"]);
        assert_eq!(s3.index_of("b"), Some(0));
    }
}
