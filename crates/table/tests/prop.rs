//! Property-based tests for CSV round-tripping and table invariants.

use em_table::{csv, DataType, Schema, Table, Value};
use proptest::prelude::*;

/// Arbitrary cell text, including CSV-hostile characters.
fn cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\n\"]{0,12}").expect("valid regex")
}

proptest! {
    /// Any table of string cells survives a CSV write → read round trip,
    /// up to the reader's canonicalizations (missing-value sentinels parse
    /// to Null; numeric/date/bool-shaped columns re-type). To isolate the
    /// quoting logic we compare rendered cells after re-rendering.
    #[test]
    fn csv_round_trip_preserves_rendered_cells(
        rows in proptest::collection::vec(proptest::collection::vec(cell(), 3), 1..12)
    ) {
        let schema = Schema::of_strings(&["a", "b", "c"]);
        let table = Table::from_rows(
            "t",
            schema,
            rows.iter()
                .map(|r| r.iter().map(|s| Value::Str(s.clone())).collect())
                .collect(),
        ).unwrap();

        let text = csv::write_str(&table);
        let back = csv::read_str("t", &text).unwrap();
        prop_assert_eq!(back.n_rows(), table.n_rows());
        prop_assert_eq!(back.n_cols(), table.n_cols());
        // Rendering is stable across one more round trip.
        let text2 = csv::write_str(&back);
        let back2 = csv::read_str("t", &text2).unwrap();
        prop_assert_eq!(back.rows(), back2.rows());
    }

    /// Sampling never invents rows, respects the bound, and is
    /// deterministic in the seed.
    #[test]
    fn sample_invariants(n_rows in 0usize..40, k in 0usize..50, seed in any::<u64>()) {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let table = Table::from_rows(
            "t",
            schema,
            (0..n_rows as i64).map(|i| vec![Value::Int(i)]).collect(),
        ).unwrap();
        let s1 = table.sample(k, seed);
        let s2 = table.sample(k, seed);
        prop_assert_eq!(s1.rows(), s2.rows());
        prop_assert_eq!(s1.n_rows(), k.min(n_rows));
        // every sampled row exists in the source
        for r in s1.rows() {
            prop_assert!(table.rows().contains(r));
        }
        // no duplicates (ids are unique in the source)
        let mut ids: Vec<i64> = s1.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), s1.n_rows());
    }

    /// Projection then projection composes; ordering of named columns is
    /// honoured exactly.
    #[test]
    fn project_composes(perm in proptest::sample::select(vec![
        ["a", "b", "c"], ["c", "a", "b"], ["b", "c", "a"],
    ])) {
        let schema = Schema::of_strings(&["a", "b", "c"]);
        let table = Table::from_rows(
            "t",
            schema,
            vec![vec!["1".into(), "2".into(), "3".into()]],
        ).unwrap();
        let p = table.project(&perm).unwrap();
        prop_assert_eq!(p.schema().names(), perm.to_vec());
        for name in &perm {
            prop_assert_eq!(
                p.get(0, name).unwrap().as_str(),
                table.get(0, name).unwrap().as_str()
            );
        }
        let pp = p.project(&["a", "b", "c"]).unwrap();
        prop_assert_eq!(pp.rows(), table.rows());
    }

    /// Date day numbers are strictly monotone in (year, month, day) for
    /// structurally valid dates.
    #[test]
    fn date_day_number_monotone(
        y1 in 1900i32..2100, m1 in 1u8..=12, d1 in 1u8..=28,
        y2 in 1900i32..2100, m2 in 1u8..=12, d2 in 1u8..=28,
    ) {
        let a = em_table::Date::new(y1, m1, d1).unwrap();
        let b = em_table::Date::new(y2, m2, d2).unwrap();
        prop_assert_eq!(a.cmp(&b), a.day_number().cmp(&b.day_number()));
    }
}
