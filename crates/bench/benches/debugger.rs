//! T-debug: the blocking debugger at paper scale — ranking the most
//! match-like pairs excluded by the consolidated candidate set.

use criterion::{criterion_group, criterion_main, Criterion};
use em_bench::fixtures;
use em_blocking::{debug_blocking, BlockingDebugger};
use em_core::blocking_plan::{run_blocking, BlockingPlan};

fn bench_debugger(c: &mut Criterion) {
    let fx = fixtures(true);
    let u = &fx.umetrics;
    let s = &fx.usda;
    let candidates = run_blocking(u, s, &BlockingPlan::default()).unwrap().consolidated;

    let mut g = c.benchmark_group("blocking_debugger");
    g.sample_size(10);
    g.bench_function("top_100_title_audit", |b| {
        let cfg = BlockingDebugger::new("AwardTitle", "AwardTitle").with_top_k(100);
        b.iter(|| debug_blocking(&cfg, u, s, &candidates).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_debugger);
criterion_main!(benches);
