//! T-block / A-3: blocking performance at paper scale — attribute
//! equivalence, the overlap blocker, and the overlap-coefficient blocker.
//!
//! Historical note on the footnote-4 "string filtering techniques"
//! ablation: the `use_prefix_filter` toggle is retained for API
//! compatibility, but the set-similarity join engine always runs the
//! (provably exact) length + prefix filters, so the `*_prefix_filter` /
//! `*_no_filter` pairs below now pin that the toggle changes neither the
//! output nor, within noise, the timing.

use criterion::{criterion_group, criterion_main, Criterion};
use em_bench::fixtures;
use em_blocking::{AttrEquivalenceBlocker, Blocker, OverlapBlocker, SetSimBlocker};
use em_core::blocking_plan::{run_blocking, BlockingPlan};

fn bench_blockers(c: &mut Criterion) {
    let fx = fixtures(true); // paper scale: 1336 × 1915
    let u = &fx.umetrics;
    let s = &fx.usda;

    let mut g = c.benchmark_group("blocking_paper_scale");
    g.sample_size(10);

    g.bench_function("attr_equivalence", |b| {
        let blocker = AttrEquivalenceBlocker::new("AwardNumber", "AwardNumber");
        b.iter(|| blocker.block(u, s).unwrap())
    });

    g.bench_function("overlap_k3_prefix_filter", |b| {
        let blocker = OverlapBlocker::new("AwardTitle", "AwardTitle", 3).with_prefix_filter();
        b.iter(|| blocker.block(u, s).unwrap())
    });

    g.bench_function("overlap_k3_no_filter", |b| {
        let blocker = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
        b.iter(|| blocker.block(u, s).unwrap())
    });

    // At K = 6 each record's canonical prefix is only a few rare tokens, so
    // filtering should start to pay (the classic prefix-filter regime).
    g.bench_function("overlap_k6_prefix_filter", |b| {
        let blocker = OverlapBlocker::new("AwardTitle", "AwardTitle", 6).with_prefix_filter();
        b.iter(|| blocker.block(u, s).unwrap())
    });

    g.bench_function("overlap_k6_no_filter", |b| {
        let blocker = OverlapBlocker::new("AwardTitle", "AwardTitle", 6);
        b.iter(|| blocker.block(u, s).unwrap())
    });

    g.bench_function("overlap_coefficient_0_7", |b| {
        let blocker = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
        b.iter(|| blocker.block(u, s).unwrap())
    });

    g.bench_function("full_plan_c1_c2_c3", |b| {
        b.iter(|| run_blocking(u, s, &BlockingPlan::default()).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_blockers);
criterion_main!(benches);
