//! P-3: feature generation and extraction over the paper-scale candidate
//! set (the matrix every matcher trains and predicts on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_bench::fixtures;
use em_core::blocking_plan::{run_blocking, BlockingPlan};
use em_features::{auto_features, extract_vectors, FeatureOptions};

fn bench_features(c: &mut Criterion) {
    let fx = fixtures(true);
    let u = &fx.umetrics;
    let s = &fx.usda;
    let candidates = run_blocking(u, s, &BlockingPlan::default()).unwrap().consolidated;
    let pairs = candidates.to_vec();
    let opts = FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive();
    let features = auto_features(u, s, &opts);

    let mut g = c.benchmark_group("features");
    g.sample_size(10);

    g.bench_function("auto_generate", |b| b.iter(|| auto_features(u, s, &opts)));

    for n in [100usize, 1000, pairs.len()] {
        let n = n.min(pairs.len());
        g.bench_with_input(BenchmarkId::new("extract_pairs", n), &n, |b, &n| {
            b.iter(|| extract_vectors(&features, u, s, &pairs[..n]).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
