//! P-1: tokenizer and string-similarity microbenchmarks on realistic award
//! titles (the strings every feature and blocker touches).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use em_text::corpus::TfIdfCorpus;
use em_text::seq;
use em_text::set;
use em_text::tokenize::{AlphanumericTokenizer, QgramTokenizer, Tokenizer};
use em_text::Normalizer;

const TITLE_A: &str = "DEVELOPMENT OF IPM-BASED CORN FUNGICIDE GUIDELINES FOR THE NORTH CENTRAL STATES";
const TITLE_B: &str = "Development of IPM-Based Corn Fungicide Guidelines for the North Central States";
const TITLE_C: &str = "Swamp Dodder (Cuscuta gronovii) Applied Ecology and Management in Carrot Production";

fn bench_tokenizers(c: &mut Criterion) {
    let mut g = c.benchmark_group("tokenize");
    g.bench_function("alnum_words", |b| {
        b.iter(|| AlphanumericTokenizer.tokenize(black_box(TITLE_A)))
    });
    g.bench_function("qgram3", |b| {
        b.iter(|| QgramTokenizer::new(3).tokenize(black_box(TITLE_A)))
    });
    g.bench_function("normalize_for_blocking", |b| {
        let n = Normalizer::for_blocking();
        b.iter(|| n.apply(black_box(TITLE_C)))
    });
    g.finish();
}

fn bench_sequence_sims(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_sim");
    g.bench_function("levenshtein", |b| {
        b.iter(|| seq::levenshtein(black_box(TITLE_A), black_box(TITLE_B)))
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| seq::jaro_winkler(black_box(TITLE_A), black_box(TITLE_B)))
    });
    g.bench_function("smith_waterman", |b| {
        b.iter(|| seq::smith_waterman(black_box(TITLE_A), black_box(TITLE_B), 1.0))
    });
    g.bench_function("needleman_wunsch", |b| {
        b.iter(|| seq::needleman_wunsch(black_box(TITLE_A), black_box(TITLE_B), 1.0))
    });
    g.finish();
}

fn bench_set_sims(c: &mut Criterion) {
    let ta = QgramTokenizer::new(3).tokenize(TITLE_A);
    let tb = QgramTokenizer::new(3).tokenize(TITLE_B);
    let wa = AlphanumericTokenizer.tokenize(TITLE_A);
    let wb = AlphanumericTokenizer.tokenize(TITLE_B);
    let mut g = c.benchmark_group("set_sim");
    g.bench_function("jaccard_q3", |b| b.iter(|| set::jaccard(black_box(&ta), black_box(&tb))));
    g.bench_function("overlap_coeff_words", |b| {
        b.iter(|| set::overlap_coefficient(black_box(&wa), black_box(&wb)))
    });
    g.bench_function("monge_elkan_jw", |b| {
        b.iter(|| set::monge_elkan_sym(black_box(&wa), black_box(&wb), seq::jaro_winkler))
    });
    g.finish();
}

fn bench_tfidf(c: &mut Criterion) {
    let docs: Vec<Vec<String>> = (0..500)
        .map(|i| {
            AlphanumericTokenizer.tokenize(if i % 2 == 0 { TITLE_A } else { TITLE_C })
        })
        .collect();
    let corpus = TfIdfCorpus::from_documents(docs.iter().map(Vec::as_slice));
    let wa = AlphanumericTokenizer.tokenize(TITLE_A);
    let wb = AlphanumericTokenizer.tokenize(TITLE_B);
    let mut g = c.benchmark_group("tfidf");
    g.bench_function("cosine", |b| b.iter(|| corpus.cosine(black_box(&wa), black_box(&wb))));
    g.bench_function("soft_cosine", |b| {
        b.iter(|| corpus.soft_cosine(black_box(&wa), black_box(&wb), 0.9, seq::jaro_winkler))
    });
    g.finish();
}

criterion_group!(benches, bench_tokenizers, bench_sequence_sims, bench_set_sims, bench_tfidf);
criterion_main!(benches);
