//! End-to-end match executor benchmarks: the fused streaming path
//! (`em_core::stream::StreamMatcher`) against the materialized
//! blocking → extract → predict workflow it is pinned bit-equal to.
//!
//! Three measurements:
//! - `stream_build`: freezing the workflow into the executor (tokenize
//!   both corpora once, build the join index, derive the feature mask,
//!   build the masked batch extractor, flatten the model);
//! - `stream_run`: driving every left row through the fused
//!   probe → extract → impute → score → rules loop;
//! - `materialized_workflow`: the classic path with its candidate set,
//!   feature matrix, and prediction vector fully materialized.
//!
//! Set `EM_BENCH_SMOKE=1` to run a tiny scenario with minimal samples
//! (used by `scripts/check.sh` to keep the bench compiling and running).

use criterion::{criterion_group, criterion_main, Criterion};
use em_core::pipeline::{CaseStudy, CaseStudyConfig};
use em_core::stream::StreamMatcher;
use em_core::EmWorkflow;
use em_datagen::ScenarioConfig;

fn bench_match_stream(c: &mut Criterion) {
    let smoke = std::env::var("EM_BENCH_SMOKE").is_ok();
    let mut cfg = CaseStudyConfig::small();
    cfg.scenario = if smoke {
        ScenarioConfig::small().with_seed(20190326)
    } else {
        ScenarioConfig::scaled(1.0).with_seed(20190326)
    };
    let artifacts = CaseStudy::new(cfg).train_serving_artifacts().unwrap();
    let (u, s) = (&artifacts.umetrics, &artifacts.usda);
    println!(
        "match_stream: {} x {} rows, learner {:?}",
        u.n_rows(),
        s.n_rows(),
        artifacts.matcher.learner_name
    );

    let mut g = c.benchmark_group("match_stream");
    g.sample_size(if smoke { 2 } else { 10 });

    g.bench_function("stream_build", |b| {
        b.iter(|| {
            StreamMatcher::new(u, s, &artifacts.matcher, &artifacts.rule_descs, &artifacts.plan)
                .unwrap()
        })
    });

    let sm = StreamMatcher::new(u, s, &artifacts.matcher, &artifacts.rule_descs, &artifacts.plan)
        .unwrap();
    g.bench_function("stream_run", |b| b.iter(|| sm.run()));

    g.bench_function("materialized_workflow", |b| {
        b.iter(|| {
            EmWorkflow {
                rules: artifacts.rule_descs.build(),
                plan: artifacts.plan,
                matcher: &artifacts.matcher,
                apply_negative: true,
            }
            .run(u, s)
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_match_stream);
criterion_main!(benches);
