//! P-4 / T-cv: fit and predict timings for the six matchers on a
//! case-study-shaped training set (~300 labeled pairs, ~40 features), and
//! a five-fold cross-validation pass (the Section 9 selection step).

use criterion::{criterion_group, criterion_main, Criterion};
use em_bench::fixtures;
use em_core::blocking_plan::{run_blocking, BlockingPlan};
use em_core::labeling::run_labeling;
use em_core::matcher::build_training_data;
use em_datagen::{Oracle, OracleConfig};
use em_features::{auto_features, FeatureOptions};
use em_ml::cv::cross_validate;
use em_ml::standard_learners;
use em_rules::{EqualityRule, RuleSet};

fn bench_matchers(c: &mut Criterion) {
    let fx = fixtures(true);
    let u = &fx.umetrics;
    let s = &fx.usda;
    let candidates = run_blocking(u, s, &BlockingPlan::default()).unwrap().consolidated;
    let oracle = Oracle::new(&fx.scenario.truth, OracleConfig::default());
    let (labeled, _) = run_labeling(u, s, &candidates, &oracle, &[100, 100, 100], 42).unwrap();
    let rules = RuleSet {
        positive: vec![EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber")],
        negative: vec![],
    };
    let opts = FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive();
    let features = auto_features(u, s, &opts);
    let (data, _) = build_training_data(u, s, &features, &labeled, &rules).unwrap();

    let mut fit = c.benchmark_group("matcher_fit");
    fit.sample_size(10);
    for learner in standard_learners(1) {
        fit.bench_function(learner.name(), |b| b.iter(|| learner.fit(&data).unwrap()));
    }
    fit.finish();

    let mut predict = c.benchmark_group("matcher_predict_1k_rows");
    predict.sample_size(10);
    let rows: Vec<Vec<f64>> = data.x.iter().cycle().take(1000).cloned().collect();
    for learner in standard_learners(1) {
        let model = learner.fit(&data).unwrap();
        predict.bench_function(learner.name(), |b| {
            b.iter(|| rows.iter().filter(|r| model.predict(r)).count())
        });
    }
    predict.finish();

    let mut cv = c.benchmark_group("selection");
    cv.sample_size(10);
    cv.bench_function("five_fold_cv_decision_tree", |b| {
        let learners = standard_learners(1);
        b.iter(|| cross_validate(learners[0].as_ref(), &data, 5, 1).unwrap())
    });
    cv.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
