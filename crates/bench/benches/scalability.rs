//! P-5: how the front half of the pipeline scales with input size —
//! generation, pre-processing, and the three-scheme blocking plan at
//! 0.5×, 1×, 2×, and 4× the paper's table sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_core::blocking_plan::{run_blocking, BlockingPlan};
use em_core::preprocess::{project_umetrics, project_usda};
use em_datagen::{Scenario, ScenarioConfig};

fn bench_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability");
    g.sample_size(10);

    for &factor in &[0.5f64, 1.0, 2.0, 4.0] {
        let scenario = Scenario::generate(ScenarioConfig::scaled(factor)).unwrap();
        let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
        let s = project_usda(&scenario.usda, true).unwrap();
        let label = format!("{:.1}x_{}x{}", factor, u.n_rows(), s.n_rows());

        g.bench_with_input(BenchmarkId::new("blocking_plan", &label), &(), |b, ()| {
            b.iter(|| run_blocking(&u, &s, &BlockingPlan::default()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
