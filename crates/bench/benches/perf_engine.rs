//! Performance-engine microbenchmarks: the interned-token cache and the
//! deterministic parallel executor's fan-out points (tokenize/intern,
//! overlap blocking, feature extraction, forest fit) at 1 thread vs the
//! hardware thread count.

use criterion::{criterion_group, criterion_main, Criterion};
use em_bench::fixtures;
use em_blocking::{Blocker, OverlapBlocker};
use em_features::{auto_features, extract_vectors, FeatureOptions};
use em_ml::dataset::{impute_mean, Dataset};
use em_ml::forest::RandomForestLearner;
use em_text::intern::{TokenCache, TokenCorpus};

fn bench_perf_engine(c: &mut Criterion) {
    let fx = fixtures(true); // paper scale: 1336 × 1915
    let u = &fx.umetrics;
    let s = &fx.usda;
    let hw = std::thread::available_parallelism().map_or(1, usize::from);

    let mut g = c.benchmark_group("perf_engine");
    g.sample_size(10);

    // Interning: tokenize both AwardTitle columns into id lists.
    g.bench_function("tokenize_intern_columns", |b| {
        b.iter(|| {
            let cache = TokenCache::for_blocking();
            let left = TokenCorpus::from_column(&cache, u.iter().map(|r| r.str("AwardTitle")));
            let right = TokenCorpus::from_column(&cache, s.iter().map(|r| r.str("AwardTitle")));
            (left.len(), right.len(), cache.n_tokens())
        })
    });

    // Overlap blocking at 1 thread and at the hardware count.
    for threads in [1, hw] {
        g.bench_function(format!("overlap_block_k3_t{threads}"), |b| {
            em_parallel::set_threads(threads);
            let blocker = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
            b.iter(|| blocker.block(u, s).unwrap());
            em_parallel::set_threads(0);
        });
    }

    // Feature extraction over the K=3 candidates.
    let pairs = OverlapBlocker::new("AwardTitle", "AwardTitle", 3).block(u, s).unwrap().to_vec();
    let features = auto_features(
        u,
        s,
        &FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive(),
    );
    for threads in [1, hw] {
        g.bench_function(format!("extract_vectors_t{threads}"), |b| {
            em_parallel::set_threads(threads);
            b.iter(|| extract_vectors(&features, u, s, &pairs).unwrap());
            em_parallel::set_threads(0);
        });
    }

    // Forest fit on truth-labeled candidates.
    let x = extract_vectors(&features, u, s, &pairs).unwrap();
    let y: Vec<bool> = pairs
        .iter()
        .map(|p| {
            fx.scenario.truth.is_match(
                &u.get(p.left, "AwardNumber").map(|v| v.render()).unwrap_or_default(),
                &s.get(p.right, "AccessionNumber").map(|v| v.render()).unwrap_or_default(),
            )
        })
        .collect();
    let mut data = Dataset::new(features.names(), x, y).unwrap();
    let _ = impute_mean(&mut data);
    for threads in [1, hw] {
        g.bench_function(format!("forest_fit_t{threads}"), |b| {
            em_parallel::set_threads(threads);
            let forest = RandomForestLearner::default();
            b.iter(|| forest.fit_forest(&data).unwrap());
            em_parallel::set_threads(0);
        });
    }

    g.finish();
}

criterion_group!(benches, bench_perf_engine);
criterion_main!(benches);
