//! Macro benchmarks: scenario generation, pre-processing, and the full
//! end-to-end case study at small scale (the complete Sections 4-12 loop).

use criterion::{criterion_group, criterion_main, Criterion};
use em_core::pipeline::{CaseStudy, CaseStudyConfig};
use em_core::preprocess::{project_umetrics, project_usda};
use em_datagen::{Scenario, ScenarioConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_function("generate_scenario_paper_scale", |b| {
        b.iter(|| Scenario::generate(ScenarioConfig::paper()).unwrap())
    });

    let scenario = Scenario::generate(ScenarioConfig::paper()).unwrap();
    g.bench_function("preprocess_paper_scale", |b| {
        b.iter(|| {
            let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
            let s = project_usda(&scenario.usda, true).unwrap();
            (u.n_rows(), s.n_rows())
        })
    });

    g.bench_function("case_study_end_to_end_small", |b| {
        b.iter(|| CaseStudy::new(CaseStudyConfig::small()).run().unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
