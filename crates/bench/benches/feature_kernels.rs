//! Similarity-kernel microbenchmarks: per-pair cost of each character
//! kernel, before (naive reference) vs after (engine), plus the engine on
//! pre-decoded chars — the configuration feature extraction actually runs.
//!
//! Feeds the EXPERIMENTS.md kernel-throughput table: divide a mean sample
//! time by the pair count printed at startup to get ns/pair.
//!
//! Set `EM_BENCH_SMOKE=1` to run a tiny sample count (used by
//! `scripts/check.sh` to keep the bench compiling and running in CI).

use criterion::{criterion_group, criterion_main, Criterion};
use em_bench::fixtures;
use em_blocking::{Blocker, OverlapBlocker};
use em_text::{naive, seq, with_scratch};
use std::sync::Arc;

#[allow(clippy::disallowed_methods)] // cache-build site: lowercase once per row
fn decoded_titles(t: &em_table::Table) -> (Vec<String>, Vec<Arc<[char]>>) {
    let strings: Vec<String> = t
        .iter()
        .map(|r| r.get("AwardTitle").map(|v| v.render()).unwrap_or_default().to_lowercase())
        .collect();
    let chars = strings.iter().map(|s| s.chars().collect()).collect();
    (strings, chars)
}

fn bench_feature_kernels(c: &mut Criterion) {
    let smoke = std::env::var("EM_BENCH_SMOKE").is_ok();
    let fx = fixtures(!smoke); // paper scale unless smoking
    let (u, s) = (&fx.umetrics, &fx.usda);
    let pairs = OverlapBlocker::new("AwardTitle", "AwardTitle", 3).block(u, s).unwrap().to_vec();
    let (us, uc) = decoded_titles(u);
    let (ss, sc) = decoded_titles(s);
    println!("feature_kernels: {} candidate pairs per sample", pairs.len());

    let mut g = c.benchmark_group("feature_kernels");
    g.sample_size(if smoke { 2 } else { 10 });

    // (name, naive &str fn, engine &str fn, engine chars fn)
    type StrKernel = fn(&str, &str) -> f64;
    let kernels: Vec<(&str, StrKernel, StrKernel)> = vec![
        ("lev_sim", naive::levenshtein_sim, seq::levenshtein_sim),
        ("jaro", naive::jaro, seq::jaro),
        ("jaro_winkler", naive::jaro_winkler, seq::jaro_winkler),
        ("nw_sim", naive::needleman_wunsch_sim, seq::needleman_wunsch_sim),
        ("sw_sim", naive::smith_waterman_sim, seq::smith_waterman_sim),
    ];
    for (name, naive_fn, engine_fn) in &kernels {
        g.bench_function(format!("{name}_naive"), |b| {
            b.iter(|| {
                pairs.iter().map(|p| naive_fn(&us[p.left], &ss[p.right])).sum::<f64>()
            })
        });
        g.bench_function(format!("{name}_engine"), |b| {
            b.iter(|| {
                pairs.iter().map(|p| engine_fn(&us[p.left], &ss[p.right])).sum::<f64>()
            })
        });
    }

    // The chars path: what extraction feeds after the normalization cache.
    g.bench_function("all5_engine_chars", |b| {
        b.iter(|| {
            with_scratch(|scr| {
                pairs
                    .iter()
                    .map(|p| {
                        let (a, bs) = (&uc[p.left], &sc[p.right]);
                        seq::levenshtein_sim_chars(scr, a, bs)
                            + seq::jaro_chars(scr, a, bs)
                            + seq::jaro_winkler_chars(scr, a, bs)
                            + seq::needleman_wunsch_sim_chars(scr, a, bs)
                            + seq::smith_waterman_sim_chars(scr, a, bs)
                    })
                    .sum::<f64>()
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench_feature_kernels);
criterion_main!(benches);
