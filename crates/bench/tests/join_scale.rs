//! Scale-level pins for the corpus-scale blocking engine.
//!
//! The join rewrite must not move a single candidate pair: the x4
//! consolidated count is pinned to the value the pre-rewrite pairwise path
//! produced (and the committed `BENCH_pipeline.json` records), the result
//! is bit-identical at 1 and 4 threads, the streaming `join_stats`
//! accounting agrees with the materialized plan, and a sub-scale run
//! cross-checks the whole plan against the naive pairwise scan.

use em_blocking::{block_pairwise, OverlapBlocker, SetSimBlocker};
use em_core::blocking_plan::{c1_scheme, run_blocking, BlockingPlan};
use em_core::preprocess::{project_umetrics, project_usda};
use em_datagen::{Scenario, ScenarioConfig};
use em_table::Table;
use em_text::{TokenCache, TokenCorpus};

/// Tests that flip the global `em_parallel` thread override must not run
/// concurrently with each other.
static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The scenario the committed bench artifact uses: x`factor` on the
/// blocking tables, auxiliary tables capped at paper size (they never feed
/// the blocking columns), seed 20190326.
fn scaled_tables(factor: f64) -> (Table, Table) {
    let mut cfg = ScenarioConfig::scaled(factor).with_seed(20190326);
    let paper = ScenarioConfig::paper();
    cfg.n_employees = paper.n_employees;
    cfg.n_vendors = paper.n_vendors;
    cfg.n_subawards = paper.n_subawards;
    cfg.n_object_codes = paper.n_object_codes;
    let s = Scenario::generate(cfg).unwrap();
    let u = project_umetrics(&s.award_agg, &s.employees).unwrap();
    let d = project_usda(&s.usda, true).unwrap();
    (u, d)
}

/// The x4 candidate set is pinned to the pre-rewrite pairwise path's count
/// (the committed `BENCH_pipeline.json` baseline) and bit-identical at 1
/// and 4 threads.
#[test]
fn x4_candidates_pinned_and_thread_invariant() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (u, d) = scaled_tables(4.0);
    let plan = BlockingPlan::default();
    em_parallel::set_threads(1);
    let one = run_blocking(&u, &d, &plan).unwrap();
    em_parallel::set_threads(4);
    let four = run_blocking(&u, &d, &plan).unwrap();
    em_parallel::set_threads(0);
    assert_eq!(
        one.consolidated.len(),
        25676,
        "x4 consolidated count moved off the pre-rewrite baseline"
    );
    assert_eq!(one.consolidated.to_vec(), four.consolidated.to_vec());
    assert_eq!(one.c2.to_vec(), four.c2.to_vec());
    assert_eq!(one.c3.to_vec(), four.c3.to_vec());
}

/// The streaming scaling accounting (`join_stats` + inclusion–exclusion
/// over the C1 flags) equals the materialized plan, and is itself
/// thread-count invariant — checksum included.
#[test]
fn streamed_scaling_count_matches_materialized_plan() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (u, d) = scaled_tables(1.0);
    let plan = BlockingPlan::default();
    let out = run_blocking(&u, &d, &plan).unwrap();

    let streamed = |threads: usize| {
        em_parallel::set_threads(threads);
        let c1 = c1_scheme(&u, &d).unwrap();
        let c1_pairs: std::collections::HashSet<(usize, usize)> =
            c1.iter().map(|p| (p.left, p.right)).collect();
        let cache = TokenCache::for_blocking();
        let left = TokenCorpus::from_column(
            &cache,
            (0..u.n_rows()).map(|i| u.get(i, "AwardTitle").and_then(|v| v.as_str())),
        );
        let right = TokenCorpus::from_column(
            &cache,
            (0..d.n_rows()).map(|i| d.get(i, "AwardTitle").and_then(|v| v.as_str())),
        );
        let index = em_blocking::JoinIndex::build(right);
        let stats = em_blocking::join_stats(&left, &index, &plan.union_spec(), |i, j| {
            c1_pairs.contains(&(i, j))
        });
        (c1.len() as u64 + stats.pairs - stats.flagged, stats)
    };
    let (consolidated_1t, stats_1t) = streamed(1);
    let (consolidated_4t, stats_4t) = streamed(4);
    em_parallel::set_threads(0);
    assert_eq!(consolidated_1t, out.consolidated.len() as u64);
    assert_eq!(consolidated_1t, consolidated_4t);
    assert_eq!(stats_1t, stats_4t, "streamed stats (checksum included) must not depend on threads");
}

/// Sub-scale end-to-end cross-check: every scheme of the plan equals the
/// naive pairwise scan over the full Cartesian product.
#[test]
fn quarter_scale_plan_matches_pairwise_scan() {
    let (u, d) = scaled_tables(0.25);
    let out = run_blocking(&u, &d, &BlockingPlan::default()).unwrap();
    let overlap = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
    let oc = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);
    assert_eq!(out.c2.to_vec(), block_pairwise(&overlap, &u, &d).unwrap().to_vec());
    assert_eq!(out.c3.to_vec(), block_pairwise(&oc, &u, &d).unwrap().to_vec());
}
