//! Pins the fused streaming executor's x4 corpus-scale run: the exact
//! accounting `reproduce --scaling-match` commits to
//! `BENCH_pipeline.json` (candidates, predicted, flipped, matched, and
//! the chunk-chained FNV checksum), thread-invariant at 1 and 4 threads,
//! and bit-identical to the materialized blocking → extract → predict
//! workflow. The setup mirrors `scaling_match_stages` in
//! `src/bin/reproduce.rs`: the workflow trains once at x1 (uncapped),
//! then streams over the x4 scenario with auxiliary tables capped at
//! paper size.

use em_core::pipeline::{CaseStudy, CaseStudyConfig};
use em_core::preprocess::{project_umetrics, project_usda};
use em_core::stream::StreamMatcher;
use em_core::EmWorkflow;
use em_datagen::{Scenario, ScenarioConfig};

/// The committed bench seed (`reproduce --seed 20190326`).
const SEED: u64 = 20190326;

/// Tests that flip the global `em_parallel` thread override must not run
/// concurrently with each other.
static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn x4_stream_is_pinned_and_matches_materialized_workflow() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Frozen x1 workflow — exactly the artifact `--scaling-match` trains.
    let mut cs_cfg = CaseStudyConfig::small();
    cs_cfg.scenario = ScenarioConfig::scaled(1.0).with_seed(SEED);
    let artifacts = CaseStudy::new(cs_cfg).train_serving_artifacts().unwrap();

    // x4 corpus with auxiliary tables capped at paper size, as in the
    // blocking scaling sweep: employees / vendors / sub-awards / object
    // codes never feed the matcher's columns.
    let mut cfg = ScenarioConfig::scaled(4.0).with_seed(SEED);
    let paper = ScenarioConfig::paper();
    cfg.n_employees = paper.n_employees;
    cfg.n_vendors = paper.n_vendors;
    cfg.n_subawards = paper.n_subawards;
    cfg.n_object_codes = paper.n_object_codes;
    let scenario = Scenario::generate(cfg).unwrap();
    let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
    let d = project_usda(&scenario.usda, true).unwrap();

    let sm = StreamMatcher::new(&u, &d, &artifacts.matcher, &artifacts.rule_descs, &artifacts.plan)
        .unwrap();
    em_parallel::set_threads(1);
    let (o1, scored1, matches1) = sm.run_collecting();
    em_parallel::set_threads(4);
    let (o4, scored4, matches4) = sm.run_collecting();
    em_parallel::set_threads(0);

    // Thread invariance, checksum included.
    assert_eq!(o1, o4, "x4 outcome depends on thread count");
    assert_eq!(scored1.len(), scored4.len());
    for (a, b) in scored1.iter().zip(scored4.iter()) {
        assert_eq!(a.0, b.0, "scored pair order depends on threads");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "score depends on threads at {:?}", a.0);
    }
    assert_eq!(matches1, matches4);

    // The committed x4 row of `BENCH_pipeline.json`'s `scaling_match`
    // block, pinned value for value. A change here is a semantic change
    // to blocking, features, imputation, the model, or the rules — not
    // noise — and the committed artifact must be regenerated with it.
    assert_eq!(o1.left_rows, 5344, "x4 left rows");
    assert_eq!(o1.right_rows, 7660, "x4 right rows");
    assert_eq!(o1.candidates, 23260, "x4 streamed candidates");
    assert_eq!(o1.predicted, 1815, "x4 predicted matches");
    assert_eq!(o1.flipped, 390, "x4 negative-rule flips");
    assert_eq!(o1.matched, 3909, "x4 final matches");
    assert_eq!(o1.checksum, 0xa59b_62b4_b38e_4195, "x4 match checksum");
    assert_eq!(o1.histogram.iter().sum::<u64>(), o1.candidates as u64);

    // Bit-identity with the materialized path on the same corpus: same
    // candidate probabilities in the same order, same final match list.
    let wf = EmWorkflow {
        rules: artifacts.rule_descs.build(),
        plan: artifacts.plan,
        matcher: &artifacts.matcher,
        apply_negative: true,
    };
    let r = wf.run(&u, &d).unwrap();
    let probs = artifacts.matcher.probabilities(&u, &d, &r.candidates).unwrap();
    assert_eq!(o1.sure, r.sure.len(), "sure count");
    assert_eq!(o1.candidates, r.candidates.len(), "candidate count");
    assert_eq!(o1.predicted, r.predicted.len(), "predicted count");
    assert_eq!(o1.flipped, r.flipped.len(), "flipped count");
    assert_eq!(scored1.len(), probs.len(), "scored-pair count");
    for ((sp, sv), (mp, mv)) in scored1.iter().zip(probs.iter()) {
        assert_eq!(sp, mp, "scored pair order vs materialized");
        assert_eq!(sv.to_bits(), mv.to_bits(), "probability mismatch at {sp:?}: {sv} vs {mv}");
    }
    assert_eq!(matches1, r.matches.to_vec(), "match list vs materialized");
}
