//! # em-bench — the paper-reproduction harness and benchmarks
//!
//! - `cargo run -p em-bench --bin reproduce [-- --scale paper --section all]`
//!   regenerates every table and figure of the paper (see EXPERIMENTS.md for
//!   the paper-vs-measured record).
//! - `cargo bench -p em-bench` runs the Criterion suites: tokenizer and
//!   similarity microbenchmarks, set-similarity-join blocking (ablation
//!   A-3 reduces to a no-op toggle now that the join engine always runs
//!   its exact filters), feature extraction, matcher fit/predict, and the
//!   blocking debugger.
//!
//! This crate exposes small shared helpers for the benches; the binary
//! lives in `src/bin/reproduce.rs`.

#![warn(missing_docs)]

use em_core::preprocess::{project_umetrics, project_usda};
use em_datagen::{Scenario, ScenarioConfig};
use em_table::Table;

/// A prepared pair of projected tables plus the scenario behind them, used
/// by benches so each bench does not re-derive the fixtures.
pub struct Fixtures {
    /// Projected UMETRICS table.
    pub umetrics: Table,
    /// Projected USDA table (with ProjectNumber).
    pub usda: Table,
    /// The full scenario.
    pub scenario: Scenario,
}

/// Builds fixtures at the given scale (`true` = paper scale).
pub fn fixtures(paper_scale: bool) -> Fixtures {
    let cfg = if paper_scale { ScenarioConfig::paper() } else { ScenarioConfig::small() };
    fixtures_cfg(cfg)
}

/// Builds fixtures from an explicit scenario config — e.g. one produced by
/// [`ScenarioConfig::scaled`] for `reproduce --scale-factor` runs.
pub fn fixtures_cfg(cfg: ScenarioConfig) -> Fixtures {
    let scenario = Scenario::generate(cfg).expect("valid preset");
    let umetrics = project_umetrics(&scenario.award_agg, &scenario.employees)
        .expect("generated tables are consistent");
    let usda = project_usda(&scenario.usda, true).expect("generated tables are consistent");
    Fixtures { umetrics, usda, scenario }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_at_small_scale() {
        let f = fixtures(false);
        assert!(f.umetrics.n_rows() > 0);
        assert!(f.usda.schema().contains("ProjectNumber"));
    }
}
