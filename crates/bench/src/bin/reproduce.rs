//! Regenerates every table and figure of *Executing Entity Matching End to
//! End: A Case Study* (EDBT 2019) on the synthetic scenario.
//!
//! ```text
//! cargo run --release -p em-bench --bin reproduce -- [--scale paper|small]
//!     [--seed N] [--faults] [--threads N] [--bench] [--active] [--weak]
//!     [--section <id>]...
//! ```
//!
//! Sections: `fig1 fig2 fig3 fig4 fig5 fig7 blocking blockdebug labeling
//! selection matching rule2 patch estimate final resilience ablation`
//! (default: all). `--faults` runs the case study under an active fault
//! plan (flaky oracle + corrupted USDA CSV) so the resilience section shows
//! a non-trivial ledger; the headline numbers should not move. Output is
//! plain text with the paper's numbers quoted next to ours; tee it into
//! EXPERIMENTS.md evidence files.
//!
//! `--threads N` pins the parallel executor's worker count (default:
//! `EM_THREADS` or the hardware); results never depend on it. `--bench`
//! times the parallel pipeline stages at 1 thread and at N threads,
//! verifies the outputs are bit-identical, writes `BENCH_pipeline.json`,
//! and skips the report sections. Every run ends with its total wall time
//! and thread count.

use em_bench::fixtures_cfg;
use em_blocking::{Blocker, OverlapBlocker, Pair};
use em_core::blocking_plan::{run_blocking, BlockingPlan};
use em_core::labeling::run_labeling;
use em_core::matcher::{build_training_data, select_matcher, train_matcher, MatcherStage};
use em_core::pipeline::{CaseStudy, CaseStudyConfig, CaseStudyReport};
use em_core::resilience::FaultPlan;
use em_datagen::{Oracle, OracleConfig, ScenarioConfig};
use em_features::{auto_features, extract_vectors, FeatureOptions};
use em_ml::dataset::{impute_mean, Dataset};
use em_ml::model::Learner;
use em_ml::tree::DecisionTreeLearner;
use em_rules::award::award_suffix;
use em_rules::{EqualityRule, RuleSet};
use em_table::{csv, DataType, Table};

struct Args {
    paper_scale: bool,
    scale_factor: Option<f64>,
    seed: Option<u64>,
    faults: bool,
    threads: Option<usize>,
    bench: bool,
    serve: bool,
    serve_chaos: bool,
    serve_load: bool,
    scaling: Vec<f64>,
    scaling_match: Vec<f64>,
    active: bool,
    weak: bool,
    explicit_sections: bool,
    sections: Vec<String>,
}

impl Args {
    /// The scenario config the flags select, before any seed override:
    /// `--scale-factor f` wins over `--scale paper|small`.
    fn base_cfg(&self) -> ScenarioConfig {
        match self.scale_factor {
            Some(f) => ScenarioConfig::scaled(f),
            None if self.paper_scale => ScenarioConfig::paper(),
            None => ScenarioConfig::small(),
        }
    }

    /// Label used in console output and the bench JSON.
    fn scale_label(&self) -> String {
        match self.scale_factor {
            Some(f) => format!("x{f}"),
            None if self.paper_scale => "paper".to_string(),
            None => "small".to_string(),
        }
    }
}

const ALL_SECTIONS: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig7", "blocking", "blockdebug", "labeling",
    "selection", "matching", "rule2", "patch", "estimate", "final", "resilience", "ablation",
];

fn parse_args() -> Args {
    let mut args = Args {
        paper_scale: false,
        scale_factor: None,
        seed: None,
        faults: false,
        threads: None,
        bench: false,
        serve: false,
        serve_chaos: false,
        serve_load: false,
        scaling: Vec::new(),
        scaling_match: Vec::new(),
        active: false,
        weak: false,
        explicit_sections: false,
        sections: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                args.paper_scale = v == "paper";
            }
            "--scale-factor" => {
                args.scale_factor =
                    it.next().and_then(|v| v.parse().ok()).filter(|&f: &f64| f > 0.0);
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok());
            }
            "--faults" => {
                args.faults = true;
            }
            "--threads" => {
                args.threads = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
            }
            "--bench" => {
                args.bench = true;
            }
            "--serve" => {
                args.serve = true;
            }
            "--serve-chaos" => {
                args.serve_chaos = true;
            }
            "--serve-load" => {
                args.serve_load = true;
            }
            "--scaling" => {
                args.scaling = it
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter_map(|v| v.trim().parse().ok())
                    .filter(|&f: &f64| f > 0.0)
                    .collect();
            }
            "--scaling-match" => {
                args.scaling_match = it
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter_map(|v| v.trim().parse().ok())
                    .filter(|&f: &f64| f > 0.0)
                    .collect();
            }
            "--active" => {
                args.active = true;
            }
            "--weak" => {
                args.weak = true;
            }
            "--section" => {
                if let Some(v) = it.next() {
                    args.explicit_sections = true;
                    args.sections.push(v);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [--scale paper|small] [--scale-factor F] [--seed N] [--faults] [--threads N] [--bench] [--serve] [--serve-chaos] [--section <id>]...\n\
                     sections: {} (default: all)\n\
                     --scale-factor F: generate the scenario at F times paper scale (overrides --scale)\n\
                     --faults: inject a flaky oracle and CSV corruption; the run must absorb them\n\
                     --threads N: pin the parallel executor's worker count (results never change)\n\
                     --bench: time pipeline stages at 1 vs N threads, write BENCH_pipeline.json\n\
                     --serve: also time online serving (serve_batch/serve_single); implies --bench\n\
                     --serve-chaos: drive the serve tier through a seeded fault schedule (crashes,\n\
                                    torn WAL tails, corrupt snapshots, bursts) and prove recovery is\n\
                                    bit-identical; standalone, or a serve_chaos JSON block with --bench\n\
                     --serve-load: open-loop load benchmark over the sharded serve tier: seeded\n\
                                    Poisson-style arrivals through the micro-batching scheduler at\n\
                                    shard counts 1/2/4, rate sweep auto-calibrated from the 1-shard\n\
                                    capacity; prints latency tables (p50/p99/p999, virtual time) and\n\
                                    saturation throughput; standalone, or a serve_load JSON block\n\
                                    with --bench\n\
                     --scaling F1,F2,...: run the corpus-scale blocking stages at each factor\n\
                                    (streaming set-similarity join; records candidates/sec, wall\n\
                                    time, and peak RSS). With --bench this adds a `scaling` block\n\
                                    to BENCH_pipeline.json; standalone it writes BENCH_scaling.json.\n\
                                    A bare --scale-factor F (no --bench, no --section) is shorthand\n\
                                    for --scaling F\n\
                     --active: run the label-efficiency experiment (query-by-committee active\n\
                                    learning vs random sampling on a loose quarter-scale pool);\n\
                                    prints both curves and the labels-to-target comparison.\n\
                                    With --bench this adds a label_efficiency block to\n\
                                    BENCH_pipeline.json\n\
                     --weak: train a matcher from labeling functions alone (weak supervision,\n\
                                    zero oracle labels) and score it; combines with --active\n\
                                    and rides along --bench the same way\n\
                     --scaling-match F1,F2,...: run the fused end-to-end streaming match at each\n\
                                    factor (blocking -> features -> forest -> rules, no\n\
                                    materialized candidate set); trains the frozen workflow once\n\
                                    at x1, then records matched pairs, pairs/s, a thread-invariant\n\
                                    checksum, and peak RSS per factor. With --bench this adds a\n\
                                    scaling_match block to BENCH_pipeline.json; standalone it\n\
                                    writes BENCH_scaling.json",
                    ALL_SECTIONS.join(" ")
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if args.sections.is_empty() || args.sections.iter().any(|s| s == "all") {
        args.sections = ALL_SECTIONS.iter().map(|s| s.to_string()).collect();
    }
    args
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let started = std::time::Instant::now();
    let args = parse_args();
    if let Some(n) = args.threads {
        em_parallel::set_threads(n);
    }
    if args.serve_chaos && !args.bench && !args.serve {
        serve_chaos_section(&args)?;
        print_wall_time(started);
        return Ok(());
    }
    if args.serve_load && !args.bench && !args.serve {
        serve_load_section(&args)?;
        print_wall_time(started);
        return Ok(());
    }
    if (args.active || args.weak) && !args.bench && !args.serve {
        label_efficiency_section(&args)?;
        print_wall_time(started);
        return Ok(());
    }
    if args.bench || args.serve {
        bench_pipeline(&args)?;
        print_wall_time(started);
        return Ok(());
    }
    // Scaling-only modes: an explicit `--scaling` list, or a bare
    // `--scale-factor F` with no sections requested — running the full
    // report at x64/x256 is not meaningful (the paper's numbers are
    // x1-scale), so a bare factor means "measure the corpus-scale blocking
    // stage there".
    if !args.scaling.is_empty()
        || !args.scaling_match.is_empty()
        || (args.scale_factor.is_some() && !args.explicit_sections)
    {
        let seed = args.base_cfg().seed;
        let seed = args.seed.unwrap_or(seed);
        // The match sweep runs first so its peak-RSS readings (`VmHWM`
        // high-water) are not masked by the blocking sweep's footprint.
        let match_block = if args.scaling_match.is_empty() {
            String::new()
        } else {
            scaling_match_stages(&args.scaling_match, seed)?
        };
        let mut block = String::new();
        // A bare `--scale-factor F` keeps its blocking-scaling shorthand
        // meaning unless an explicit `--scaling-match` list was given.
        if !args.scaling.is_empty() || args.scaling_match.is_empty() {
            let factors = if args.scaling.is_empty() {
                vec![args.scale_factor.unwrap_or(1.0)]
            } else {
                args.scaling.clone()
            };
            block.push_str(&scaling_stages(&factors, seed)?);
        }
        block.push_str(&match_block);
        let json = format!("{{\n{block}  \"seed\": {seed}\n}}\n");
        std::fs::write("BENCH_scaling.json", &json)?;
        println!("  wrote BENCH_scaling.json");
        print_wall_time(started);
        return Ok(());
    }
    let wants = |s: &str| args.sections.iter().any(|x| x == s);

    let mut scenario_cfg = args.base_cfg();
    if let Some(seed) = args.seed {
        scenario_cfg = scenario_cfg.with_seed(seed);
    }

    println!(
        "# Reproduction run — scale: {}, scenario seed: {}",
        args.scale_label(),
        scenario_cfg.seed
    );

    if wants("fig1") {
        fig1()?;
    }

    // Scenario-backed figures.
    let fx = fixtures_cfg(args.base_cfg());
    if wants("fig2") {
        fig2(&fx.scenario);
    }
    if wants("fig3") {
        println!("\n## Figure 3 — example rows from the UMETRICS tables");
        print!("{}", fx.scenario.award_agg.head(3));
        print!("{}", fx.scenario.employees.head(3));
    }
    if wants("fig4") {
        println!("\n## Figure 4 — example rows from the USDA table (meaningful columns)");
        let cols = [
            "AccessionNumber",
            "ProjectTitle",
            "SponsoringAgency",
            "FundingMechanism",
            "AwardNumber",
            "RecipientOrganization",
            "ProjectDirector",
            "ProjectNumber",
            "ProjectStartDate",
            "ProjectEndDate",
        ];
        print!("{}", fx.scenario.usda.project(&cols)?.head(3));
    }
    if wants("fig5") {
        fig5_fig6(&fx.umetrics, &fx.usda, &fx.scenario.truth);
    }
    if wants("fig7") {
        println!("\n## Figure 7 — sample rows of the projected tables");
        print!("{}", fx.umetrics.head(3));
        print!("{}", fx.usda.head(3));
    }

    // Report-backed sections: run the case study once.
    let report_sections = [
        "fig2", "blocking", "blockdebug", "labeling", "selection", "matching", "rule2",
        "patch", "estimate", "final", "resilience",
    ];
    if report_sections.iter().any(|s| wants(s)) {
        let mut cfg = if args.paper_scale {
            CaseStudyConfig::paper()
        } else {
            CaseStudyConfig::small()
        };
        cfg.scenario = scenario_cfg.clone();
        if args.faults {
            cfg.faults = FaultPlan {
                seed: 0xFA57,
                p_oracle_unavailable: 0.15,
                p_oracle_timeout: 0.05,
                max_fault_attempts: 4,
                p_corrupt_row: 0.03,
                max_quarantine_fraction: 0.2,
                ..FaultPlan::none()
            };
            eprintln!("running the end-to-end case study under the fault plan…");
        } else {
            eprintln!("running the end-to-end case study…");
        }
        let report = CaseStudy::new(cfg).run()?;
        print_report(&report, &args);
    }

    if wants("ablation") {
        ablations(&fx.umetrics, &fx.usda, &fx.scenario)?;
    }
    print_wall_time(started);
    Ok(())
}

/// Stderr, not stdout: stdout is the deterministic report (the checked-in
/// `reproduce_paper_output.txt` must byte-match a fresh run), timing is not.
fn print_wall_time(started: std::time::Instant) {
    eprintln!(
        "\nTotal wall time: {:.2}s using {} thread(s)",
        started.elapsed().as_secs_f64(),
        em_parallel::threads()
    );
}

/// Timed repetitions per stage measurement (after one untimed warmup).
const BENCH_REPS: usize = 3;

/// Times `f`: one untimed warmup run (page-cache, allocator, and
/// thread-pool spin-up), then the minimum wall time over [`BENCH_REPS`]
/// timed runs — the usual estimator that is robust to scheduler noise on
/// short stages. Returns the last run's result.
fn timed<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..BENCH_REPS {
        let t0 = std::time::Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

/// One benchmark stage: wall time at 1 thread and at the requested count.
struct StageTiming {
    name: &'static str,
    items: usize,
    ms_1t: f64,
    ms_nt: f64,
}

impl StageTiming {
    fn speedup(&self) -> f64 {
        self.ms_1t / self.ms_nt.max(1e-9)
    }
    fn throughput(&self) -> f64 {
        self.items as f64 / (self.ms_nt.max(1e-9) / 1e3)
    }
}

/// `--bench`: run the parallel pipeline stages (blocking, feature
/// extraction, forest fit, batch prediction) at 1 thread and at the
/// requested thread count, assert the outputs are bit-identical, and write
/// `BENCH_pipeline.json`. With `--serve`, also time the online
/// [`MatchService`] over the scenario's extra UMETRICS records: one
/// deterministic micro-batch (`serve_batch`) and a one-record-at-a-time
/// replay (`serve_single`), both under the same warmup + min-of-3
/// estimator and the same 1-vs-N-thread bit-identity check.
fn bench_pipeline(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let requested = em_parallel::threads().max(1);
    println!("\n## Pipeline benchmark — 1 thread vs {requested} thread(s)");
    let mut cfg = args.base_cfg();
    if let Some(seed) = args.seed {
        cfg = cfg.with_seed(seed);
    }
    let bench_seed = cfg.seed;
    let fx = fixtures_cfg(cfg.clone());
    let (u, s) = (&fx.umetrics, &fx.usda);
    let mut stages: Vec<StageTiming> = Vec::new();

    // Stage 1: the Section 7 blocking plan (C1 ∪ C2 ∪ C3).
    let plan = BlockingPlan::default();
    em_parallel::set_threads(1);
    let (r1, blk_1t) = timed(|| run_blocking(u, s, &plan));
    let r1 = r1?;
    em_parallel::set_threads(requested);
    let (rn, blk_nt) = timed(|| run_blocking(u, s, &plan));
    let rn = rn?;
    assert_eq!(
        r1.consolidated.to_vec(),
        rn.consolidated.to_vec(),
        "blocking must be thread-count invariant"
    );
    let pairs: Vec<Pair> = rn.consolidated.to_vec();
    stages.push(StageTiming { name: "blocking", items: pairs.len(), ms_1t: blk_1t, ms_nt: blk_nt });

    // Stage 2 (timed below, after the forest fit): feature extraction is
    // the production *masked* batched path — the model+rules feature mask
    // over [`em_features::BatchExtractor`], the exact kernel the fused
    // streaming executor (`em_core::stream`) and the serve tier run. The
    // mask needs a fitted model, so the timing block sits after
    // `forest_fit` and is inserted at its historical position in the
    // stage table. This full (unmasked) extraction runs once, untimed, to
    // feed the forest fit and the live-slot cross-check.
    let features = auto_features(
        u,
        s,
        &FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive(),
    );
    let x_full = extract_vectors(&features, u, s, &pairs)?;

    // Stage 2b: the raw similarity-kernel engine — five character kernels
    // per candidate title pair on pre-decoded chars, with no pair memo, so
    // this tracks pure kernel throughput.
    let ut = decoded_titles(u);
    let st = decoded_titles(s);
    let run_kernels = |ps: &[Pair]| {
        em_parallel::Executor::current().map_slice(ps, 256, |p| {
            em_text::with_scratch(|scr| {
                let (a, b) = (&ut[p.left], &st[p.right]);
                [
                    em_text::seq::levenshtein_sim_chars(scr, a, b),
                    em_text::seq::jaro_chars(scr, a, b),
                    em_text::seq::jaro_winkler_chars(scr, a, b),
                    em_text::seq::needleman_wunsch_sim_chars(scr, a, b),
                    em_text::seq::smith_waterman_sim_chars(scr, a, b),
                ]
            })
        })
    };
    em_parallel::set_threads(1);
    let (k1, krn_1t) = timed(|| run_kernels(&pairs));
    em_parallel::set_threads(requested);
    let (kn, krn_nt) = timed(|| run_kernels(&pairs));
    assert!(
        k1.iter().flatten().map(|v| v.to_bits()).eq(kn.iter().flatten().map(|v| v.to_bits())),
        "kernel engine must be thread-count invariant"
    );
    stages.push(StageTiming {
        name: "feature_kernels",
        items: pairs.len() * 5,
        ms_1t: krn_1t,
        ms_nt: krn_nt,
    });

    // Stage 3: random-forest fit on truth-labeled candidates.
    let y: Vec<bool> = pairs
        .iter()
        .map(|p| {
            fx.scenario.truth.is_match(
                &u.get(p.left, "AwardNumber").map(|v| v.render()).unwrap_or_default(),
                &s.get(p.right, "AccessionNumber").map(|v| v.render()).unwrap_or_default(),
            )
        })
        .collect();
    let mut data = Dataset::new(features.names(), x_full.clone(), y)?;
    let _imputer = impute_mean(&mut data);
    let forest = em_ml::forest::RandomForestLearner::default();
    em_parallel::set_threads(1);
    let (m1, fit_1t) = timed(|| forest.fit_forest(&data));
    let m1 = m1?;
    em_parallel::set_threads(requested);
    let (mn, fit_nt) = timed(|| forest.fit_forest(&data));
    let mn = mn?;
    stages.push(StageTiming {
        name: "forest_fit",
        items: forest.n_trees,
        ms_1t: fit_1t,
        ms_nt: fit_nt,
    });

    // Stage 4: batch probability prediction over the extracted matrix.
    use em_ml::model::Model;
    em_parallel::set_threads(1);
    let (p1, prd_1t) = timed(|| {
        em_parallel::Executor::current().map_slice(&data.x, 64, |row| m1.predict_proba(row))
    });
    em_parallel::set_threads(requested);
    let (pn, prd_nt) = timed(|| {
        em_parallel::Executor::current().map_slice(&data.x, 64, |row| mn.predict_proba(row))
    });
    assert!(
        p1.iter().map(|v| v.to_bits()).eq(pn.iter().map(|v| v.to_bits())),
        "batch prediction must be thread-count invariant"
    );
    stages.push(StageTiming {
        name: "batch_predict",
        items: data.x.len(),
        ms_1t: prd_1t,
        ms_nt: prd_nt,
    });

    // The serving artifacts train here (not with the serve stages below)
    // because the masked extraction stage wants the *deployed* matcher:
    // the CV-selected model the workflow, the serve tier, and the
    // streaming executor all score with.
    let mut serving_artifacts = None;
    if args.serve || args.serve_chaos || args.serve_load {
        eprintln!("training the serving artifacts for --serve/--serve-chaos/--serve-load…");
        let mut cs_cfg =
            if args.paper_scale { CaseStudyConfig::paper() } else { CaseStudyConfig::small() };
        cs_cfg.scenario = cfg;
        serving_artifacts = Some(CaseStudy::new(cs_cfg).train_serving_artifacts()?);
    }

    // Stage 2 (deferred): masked batched feature extraction — the
    // model+rules mask over the SoA `BatchExtractor`, timed at 1 and N
    // threads with the usual bit-identity check, plus a live-slot
    // cross-check against the full per-pair extraction above. The mask
    // comes from the CV-selected pipeline matcher (what matching actually
    // reads — 18/46 at the committed x4); the 25-tree bench forest above
    // exists to time `forest_fit` and would artificially widen the mask
    // (41/46), so it is only the fallback when no artifacts are trained.
    let rule_descs = em_core::pipeline::standard_rule_descs();
    let bench_fitted;
    let mask_model = match serving_artifacts.as_ref() {
        Some(artifacts) => &artifacts.matcher.model,
        None => {
            bench_fitted = em_ml::FittedModel::Forest(mn.clone());
            &bench_fitted
        }
    };
    let mask = em_core::derive_feature_mask(&features, mask_model, &rule_descs);
    println!(
        "  feature_extraction mask: {}/{} features live (model splits + rule attributes)",
        mask.n_live(),
        mask.len()
    );
    let extractor = em_features::BatchExtractor::for_pairs(&features, u, s, &mask, &pairs)?;
    em_parallel::set_threads(1);
    let (mx1, ext_1t) = timed(|| extractor.extract_matrix(u, s, &pairs));
    em_parallel::set_threads(requested);
    let (mxn, ext_nt) = timed(|| extractor.extract_matrix(u, s, &pairs));
    assert!(
        mx1.iter().map(|v| v.to_bits()).eq(mxn.iter().map(|v| v.to_bits())),
        "masked feature extraction must be thread-count invariant"
    );
    let nf = features.len();
    for (r, full_row) in x_full.iter().enumerate() {
        for k in mask.live_indices() {
            assert_eq!(
                mx1[r * nf + k].to_bits(),
                full_row[k].to_bits(),
                "masked extraction diverged from the full path at pair {r}, feature {k}"
            );
        }
    }
    stages.insert(
        1,
        StageTiming { name: "feature_extraction", items: pairs.len(), ms_1t: ext_1t, ms_nt: ext_nt },
    );

    // Stages 5–6 (`--serve`): the online service over the scenario's extra
    // UMETRICS arrivals — a deterministic micro-batch and a
    // one-record-at-a-time replay. Both must be thread-count invariant and
    // agree with each other (the em-serve integration tests additionally
    // pin them to the batch pipeline's patch stage).
    let mut serve_json = String::new();
    if let (true, Some(artifacts)) = (args.serve, serving_artifacts.as_ref()) {
        use em_serve::{MatchService, ProbeScratch, ServeError};
        let service = MatchService::from_artifacts(artifacts)?;
        let extra = &artifacts.extra_umetrics;
        let mask = service.feature_mask();
        let (mask_live, mask_total) = (mask.n_live(), mask.len());

        // Cold latency: the very first request against a fresh service and
        // a fresh scratch — index probes, extractor probe cells, and
        // scratch buffers all start empty. Everything after this is warm.
        let mut scratch = ProbeScratch::new();
        let t_cold = std::time::Instant::now();
        let cold_outcome = service.match_on_arrival_with(extra, 0, &mut scratch)?;
        let cold_ms = t_cold.elapsed().as_secs_f64() * 1e3;
        drop(cold_outcome);

        em_parallel::set_threads(1);
        let (b1, sb_1t) = timed(|| service.match_batch(extra));
        let b1 = b1?;
        em_parallel::set_threads(requested);
        let (bn, sb_nt) = timed(|| service.match_batch(extra));
        let bn = bn?;
        assert_eq!(b1.ids, bn.ids, "micro-batch serving must be thread-count invariant");
        stages.push(StageTiming {
            name: "serve_batch",
            items: extra.n_rows(),
            ms_1t: sb_1t,
            ms_nt: sb_nt,
        });

        // One-at-a-time replay over ONE reused scratch — the steady-state
        // request loop a deployed service runs, not a fresh allocation per
        // record.
        let run_single = |scratch: &mut ProbeScratch| {
            let mut ids = em_core::MatchIds::default();
            for i in 0..extra.n_rows() {
                ids = ids.union(&service.match_on_arrival_with(extra, i, scratch)?.ids);
            }
            Ok::<_, ServeError>(ids)
        };
        em_parallel::set_threads(1);
        let (s1, ss_1t) = timed(|| run_single(&mut scratch));
        let s1 = s1?;
        em_parallel::set_threads(requested);
        let (sn, ss_nt) = timed(|| run_single(&mut scratch));
        let sn = sn?;
        assert_eq!(s1, sn, "one-at-a-time serving must be thread-count invariant");
        assert_eq!(s1, bn.ids, "one-at-a-time serving must equal the micro-batch");
        stages.push(StageTiming {
            name: "serve_single",
            items: extra.n_rows(),
            ms_1t: ss_1t,
            ms_nt: ss_nt,
        });

        // Steady-state hot loop: every cache, memo, and buffer is warm and
        // the feature mask is on — pure per-record probe → block →
        // featurize → score → rules latency. Candidate counts come from
        // one untimed accounting pass.
        let mut cand_total = 0usize;
        let mut cand_max = 0usize;
        for i in 0..extra.n_rows() {
            let o = service.match_on_arrival_with(extra, i, &mut scratch)?;
            cand_total += o.n_candidates;
            cand_max = cand_max.max(o.n_candidates);
        }
        em_parallel::set_threads(1);
        let (h1, sh_1t) = timed(|| run_single(&mut scratch));
        let h1 = h1?;
        em_parallel::set_threads(requested);
        let (hn, sh_nt) = timed(|| run_single(&mut scratch));
        let hn = hn?;
        assert_eq!(h1, hn, "hot-loop serving must be thread-count invariant");
        assert_eq!(h1, s1, "hot-loop serving must equal the one-at-a-time replay");
        stages.push(StageTiming {
            name: "serve_single_hot",
            items: extra.n_rows(),
            ms_1t: sh_1t,
            ms_nt: sh_nt,
        });

        let warm_per_record_ms = sh_nt / extra.n_rows().max(1) as f64;
        println!(
            "  serve: mask {mask_live}/{mask_total} live, cold first request {cold_ms:.2} ms, \
             warm {warm_per_record_ms:.3} ms/record, candidates total {cand_total} (max {cand_max})"
        );
        serve_json = format!(
            "  \"serve\": {{\"mask_live\": {mask_live}, \"mask_total\": {mask_total}, \
             \"cold_first_request_ms\": {cold_ms:.3}, \"warm_per_record_ms\": {warm_per_record_ms:.4}, \
             \"candidates_total\": {cand_total}, \"candidates_max\": {cand_max}}},\n"
        );
    }

    // Seeded chaos schedule over the serve tier: crashes, torn WAL tails,
    // corrupt snapshot swaps, latency spikes, and arrival bursts — the run
    // fails unless every request terminates and every served outcome is
    // bit-identical to the fault-free shadow run.
    let mut serve_chaos_json = String::new();
    if let Some(artifacts) = serving_artifacts.as_ref().filter(|_| args.serve_chaos) {
        let report = run_serve_chaos(artifacts, bench_seed)?;
        print_chaos_report(&report);
        serve_chaos_json = chaos_json(&report);
    }

    // Open-loop load sweep over the sharded tier: seeded arrivals through
    // the micro-batching scheduler at shard counts 1/2/4, latency
    // percentiles on the virtual clock, saturation throughput per shape.
    let mut serve_load_json = String::new();
    if let Some(artifacts) = serving_artifacts.as_ref().filter(|_| args.serve_load) {
        serve_load_json = run_serve_load(artifacts, bench_seed, requested)?;
    }

    // `--scaling`: the corpus-scale blocking stages ride along in the same
    // artifact so one bench run captures both the x1-scale stage table and
    // the x64/x256 scalability record.
    // `--scaling-match` rides along the same way, so one artifact carries
    // the x1 stage table and the full-pipeline x64/x256 record. It runs
    // *before* the blocking-only scaling: peak RSS comes from the `VmHWM`
    // high-water mark, and the blocking sweep's largest factor would
    // otherwise mask the streaming executor's (much lower) footprint.
    let mut scaling_match_json = String::new();
    if !args.scaling_match.is_empty() {
        scaling_match_json = scaling_match_stages(&args.scaling_match, bench_seed)?;
    }

    let mut scaling_json = String::new();
    if !args.scaling.is_empty() {
        scaling_json = scaling_stages(&args.scaling, bench_seed)?;
    }

    // `--active` / `--weak` ride along too: the label-efficiency experiment
    // runs on its own pinned pool (see `run_label_experiment`), prints the
    // curves, and lands as a `label_efficiency` block in the artifact.
    let mut label_block_json = String::new();
    if args.active || args.weak {
        let exp = run_label_experiment(args)?;
        print_label_report(&exp);
        label_block_json = label_json(&exp);
    }

    // Console summary + JSON artifact.
    println!(
        "  {:<20} {:>8} {:>12} {:>12} {:>9} {:>14}",
        "stage", "items", "1-thread ms", "N-thread ms", "speedup", "items/s"
    );
    for st in &stages {
        println!(
            "  {:<20} {:>8} {:>12.1} {:>12.1} {:>8.2}x {:>14.0}",
            st.name,
            st.items,
            st.ms_1t,
            st.ms_nt,
            st.speedup(),
            st.throughput()
        );
    }
    let total_1t: f64 = stages.iter().map(|s| s.ms_1t).sum();
    let total_nt: f64 = stages.iter().map(|s| s.ms_nt).sum();
    let combined = total_1t / total_nt.max(1e-9);
    println!("  combined: {total_1t:.1} ms → {total_nt:.1} ms ({combined:.2}x)");

    let stage_json: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"items\": {}, \"wall_ms_1t\": {:.3}, \"wall_ms_nt\": {:.3}, \"speedup\": {:.3}, \"throughput_per_s\": {:.1}}}",
                s.name,
                s.items,
                s.ms_1t,
                s.ms_nt,
                s.speedup(),
                s.throughput()
            )
        })
        .collect();
    // Host parallelism context: what the machine offers vs. what the run
    // used (`--threads` / `EM_THREADS`), so committed numbers are
    // interpretable on other hardware.
    let available = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \"threads\": {},\n  \"available_parallelism\": {},\n  \"em_threads\": {},\n  \"candidate_pairs\": {},\n{}{}{}{}{}{}  \"stages\": [\n{}\n  ],\n  \"total_wall_ms_1t\": {:.3},\n  \"total_wall_ms_nt\": {:.3},\n  \"combined_speedup\": {:.3}\n}}\n",
        args.scale_label(),
        bench_seed,
        requested,
        available,
        requested,
        pairs.len(),
        serve_json,
        serve_chaos_json,
        serve_load_json,
        scaling_json,
        scaling_match_json,
        label_block_json,
        stage_json.join(",\n"),
        total_1t,
        total_nt,
        combined
    );
    std::fs::write("BENCH_pipeline.json", &json)?;
    println!("  wrote BENCH_pipeline.json");
    Ok(())
}

/// Peak resident-set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`); 0.0 where procfs is unavailable. A high-water
/// mark, so per-stage readings are meaningful when stages run in
/// ascending-cost order.
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 =
                rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// One corpus-scale blocking measurement.
struct ScaleStage {
    factor: f64,
    left_rows: usize,
    right_rows: usize,
    gen_ms: f64,
    wall_ms: f64,
    join_pairs: u64,
    consolidated: u64,
    checksum: u64,
    peak_rss_mib: f64,
}

impl ScaleStage {
    fn cand_per_s(&self) -> f64 {
        self.join_pairs as f64 / (self.wall_ms.max(1e-9) / 1e3)
    }
}

/// `--scaling F1,F2,...`: the corpus-scale blocking stages. Each factor
/// generates the scenario at that scale (auxiliary tables capped at paper
/// size — they never feed the blocking columns, verified by the x4
/// cross-check below), runs C1 as a hash join, and **streams** the
/// `C2 ∪ C3` title join through [`em_blocking::join_stats`]: candidate
/// counts, an order-invariant checksum of the exact pair stream, and a
/// C1-membership flag per pair, so `|C1 ∪ C2 ∪ C3|` falls out of
/// inclusion–exclusion without ever materializing a corpus-scale candidate
/// set. Factors run in ascending order so the `VmHWM` high-water mark read
/// after each stage approximates that stage's peak.
fn scaling_stages(factors: &[f64], seed: u64) -> Result<String, Box<dyn std::error::Error>> {
    use em_core::blocking_plan::c1_scheme;
    use em_text::intern::{TokenCache, TokenCorpus};

    let mut factors: Vec<f64> = factors.to_vec();
    factors.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    println!("\n## Corpus-scale blocking — streaming set-similarity join");
    println!(
        "  {:>7} {:>9} {:>9} {:>9} {:>12} {:>12} {:>13} {:>9}",
        "factor", "left", "right", "wall ms", "join pairs", "|C1∪C2∪C3|", "cand/s", "RSS MiB"
    );
    let plan = BlockingPlan::default();
    let spec = plan.union_spec();
    let mut stages = Vec::new();
    for &factor in &factors {
        // Cap the auxiliary tables (employees, vendors, sub-awards, object
        // codes) at paper size: each table draws from its own RNG stream,
        // so the blocking inputs are unchanged, and generation stays
        // proportional to the tables blocking actually reads.
        let mut cfg = ScenarioConfig::scaled(factor).with_seed(seed);
        let paper = ScenarioConfig::paper();
        cfg.n_employees = paper.n_employees;
        cfg.n_vendors = paper.n_vendors;
        cfg.n_subawards = paper.n_subawards;
        cfg.n_object_codes = paper.n_object_codes;

        let t0 = std::time::Instant::now();
        let scenario = em_datagen::Scenario::generate(cfg)?;
        let u = em_core::preprocess::project_umetrics(&scenario.award_agg, &scenario.employees)?;
        let d = em_core::preprocess::project_usda(&scenario.usda, true)?;
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = std::time::Instant::now();
        let c1 = c1_scheme(&u, &d)?;
        let c1_pairs: std::collections::HashSet<(usize, usize)> =
            c1.iter().map(|p| (p.left, p.right)).collect();
        let cache = TokenCache::for_blocking();
        let left = TokenCorpus::from_column(
            &cache,
            (0..u.n_rows()).map(|i| u.get(i, "AwardTitle").and_then(|v| v.as_str())),
        );
        let right = TokenCorpus::from_column(
            &cache,
            (0..d.n_rows()).map(|i| d.get(i, "AwardTitle").and_then(|v| v.as_str())),
        );
        let index = em_blocking::JoinIndex::build(right);
        let stats =
            em_blocking::join_stats(&left, &index, &spec, |i, j| c1_pairs.contains(&(i, j)));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        // |C1 ∪ (C2 ∪ C3)| by inclusion–exclusion over the streamed flags.
        let consolidated = c1.len() as u64 + stats.pairs - stats.flagged;
        let stage = ScaleStage {
            factor,
            left_rows: u.n_rows(),
            right_rows: d.n_rows(),
            gen_ms,
            wall_ms,
            join_pairs: stats.pairs,
            consolidated,
            checksum: stats.checksum,
            peak_rss_mib: peak_rss_mib(),
        };
        println!(
            "  {:>7} {:>9} {:>9} {:>9.1} {:>12} {:>12} {:>13.0} {:>9.0}",
            format!("x{factor}"),
            stage.left_rows,
            stage.right_rows,
            stage.wall_ms,
            stage.join_pairs,
            stage.consolidated,
            stage.cand_per_s(),
            stage.peak_rss_mib
        );

        // Small factors double as a correctness gate: the streamed count
        // must equal the materialized plan's consolidated set.
        if factor <= 8.0 {
            let out = run_blocking(&u, &d, &plan)?;
            assert_eq!(
                consolidated,
                out.consolidated.len() as u64,
                "streamed consolidated count diverged from run_blocking at x{factor}"
            );
        }
        stages.push(stage);
    }

    let stage_json: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"factor\": {}, \"left_rows\": {}, \"right_rows\": {}, \
                 \"gen_ms\": {:.3}, \"wall_ms\": {:.3}, \"join_pairs\": {}, \
                 \"consolidated\": {}, \"checksum\": \"{:#018x}\", \
                 \"cand_per_s\": {:.1}, \"peak_rss_mib\": {:.1}}}",
                s.factor,
                s.left_rows,
                s.right_rows,
                s.gen_ms,
                s.wall_ms,
                s.join_pairs,
                s.consolidated,
                s.checksum,
                s.cand_per_s(),
                s.peak_rss_mib
            )
        })
        .collect();
    Ok(format!("  \"scaling\": [\n{}\n  ],\n", stage_json.join(",\n")))
}

/// One corpus-scale end-to-end match measurement.
struct ScaleMatchStage {
    factor: f64,
    left_rows: usize,
    right_rows: usize,
    gen_ms: f64,
    wall_ms: f64,
    candidates: usize,
    predicted: usize,
    flipped: usize,
    matched: usize,
    checksum: u64,
    peak_rss_mib: f64,
}

impl ScaleMatchStage {
    /// Candidate pairs driven through extract+impute+score per second —
    /// the full-pipeline analogue of the blocking table's `cand/s`.
    fn pairs_per_s(&self) -> f64 {
        self.candidates as f64 / (self.wall_ms.max(1e-9) / 1e3)
    }
}

/// `--scaling-match F1,F2,...`: the fused end-to-end streaming match.
/// The frozen workflow (features, imputer, CV-selected model, rules,
/// plan) trains **once** at x1 — scaling varies the corpus the executor
/// streams over, not the artifact under test. Each factor generates the
/// scenario with auxiliary tables capped at paper size (identical
/// blocking inputs, as in [`scaling_stages`]), then drives every left row
/// through [`em_core::stream::StreamMatcher`]: join-probe candidates →
/// masked batch features → mean imputation → blocked forest scoring →
/// negative rules, keeping only streamed accounting in memory. Factors
/// run ascending so the `VmHWM` high-water read after each stage
/// approximates that stage's peak; at small factors the stream is
/// cross-checked against the materialized [`em_core::EmWorkflow`].
fn scaling_match_stages(factors: &[f64], seed: u64) -> Result<String, Box<dyn std::error::Error>> {
    use em_core::stream::StreamMatcher;
    use em_core::EmWorkflow;

    let mut factors: Vec<f64> = factors.to_vec();
    factors.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    println!("\n## Corpus-scale end-to-end matching — fused streaming executor");

    // Train the frozen workflow once at x1 (the case study's own scale;
    // auxiliary tables uncapped so the artifact is exactly the one the
    // paper-scale pipeline produces).
    eprintln!("training the frozen x1 workflow for --scaling-match…");
    let t0 = std::time::Instant::now();
    let mut cs_cfg = CaseStudyConfig::small();
    cs_cfg.scenario = ScenarioConfig::scaled(1.0).with_seed(seed);
    let artifacts = CaseStudy::new(cs_cfg).train_serving_artifacts()?;
    eprintln!(
        "trained in {:.1}s: {} ({} features)",
        t0.elapsed().as_secs_f64(),
        artifacts.matcher.learner_name,
        artifacts.matcher.features.len()
    );

    println!(
        "  {:>7} {:>9} {:>9} {:>10} {:>12} {:>9} {:>13} {:>9}",
        "factor", "left", "right", "wall ms", "candidates", "matched", "pairs/s", "RSS MiB"
    );
    let mut stages = Vec::new();
    let mut mask_live = 0usize;
    let mut mask_total = 0usize;
    for &factor in &factors {
        // Same auxiliary-table cap as the blocking scaling: employees,
        // vendors, sub-awards, and object codes never feed the matcher's
        // columns, so generation stays proportional to what matching reads.
        let mut cfg = ScenarioConfig::scaled(factor).with_seed(seed);
        let paper = ScenarioConfig::paper();
        cfg.n_employees = paper.n_employees;
        cfg.n_vendors = paper.n_vendors;
        cfg.n_subawards = paper.n_subawards;
        cfg.n_object_codes = paper.n_object_codes;

        let t0 = std::time::Instant::now();
        let scenario = em_datagen::Scenario::generate(cfg)?;
        let u = em_core::preprocess::project_umetrics(&scenario.award_agg, &scenario.employees)?;
        let d = em_core::preprocess::project_usda(&scenario.usda, true)?;
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = std::time::Instant::now();
        let sm = StreamMatcher::new(
            &u,
            &d,
            &artifacts.matcher,
            &artifacts.rule_descs,
            &artifacts.plan,
        )?;
        let out = sm.run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        mask_live = sm.mask().n_live();
        mask_total = sm.mask().len();

        let stage = ScaleMatchStage {
            factor,
            left_rows: out.left_rows,
            right_rows: out.right_rows,
            gen_ms,
            wall_ms,
            candidates: out.candidates,
            predicted: out.predicted,
            flipped: out.flipped,
            matched: out.matched,
            checksum: out.checksum,
            peak_rss_mib: peak_rss_mib(),
        };
        println!(
            "  {:>7} {:>9} {:>9} {:>10.1} {:>12} {:>9} {:>13.0} {:>9.0}",
            format!("x{factor}"),
            stage.left_rows,
            stage.right_rows,
            stage.wall_ms,
            stage.candidates,
            stage.matched,
            stage.pairs_per_s(),
            stage.peak_rss_mib
        );

        // Small factors double as a correctness gate: the stream must
        // reproduce the materialized workflow's accounting exactly.
        if factor <= 4.0 {
            let wf = EmWorkflow {
                rules: artifacts.rule_descs.build(),
                plan: artifacts.plan,
                matcher: &artifacts.matcher,
                apply_negative: true,
            };
            let r = wf.run(&u, &d)?;
            assert_eq!(
                out.candidates,
                r.candidates.len(),
                "streamed candidate count diverged from the workflow at x{factor}"
            );
            assert_eq!(
                out.matched,
                r.matches.len(),
                "streamed match count diverged from the workflow at x{factor}"
            );
        }
        stages.push(stage);
    }
    println!("  mask: {mask_live}/{mask_total} features live");

    let stage_json: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"factor\": {}, \"left_rows\": {}, \"right_rows\": {}, \
                 \"gen_ms\": {:.3}, \"wall_ms\": {:.3}, \"candidates\": {}, \
                 \"predicted\": {}, \"flipped\": {}, \"matched\": {}, \
                 \"pairs_per_s\": {:.1}, \"checksum\": \"{:#018x}\", \
                 \"mask_live\": {}, \"mask_total\": {}, \"peak_rss_mib\": {:.1}}}",
                s.factor,
                s.left_rows,
                s.right_rows,
                s.gen_ms,
                s.wall_ms,
                s.candidates,
                s.predicted,
                s.flipped,
                s.matched,
                s.pairs_per_s(),
                s.checksum,
                mask_live,
                mask_total,
                s.peak_rss_mib
            )
        })
        .collect();
    Ok(format!("  \"scaling_match\": [\n{}\n  ],\n", stage_json.join(",\n")))
}

/// Standalone `--serve-chaos`: train the serving artifacts and drive the
/// seeded fault schedule, failing the process unless the run is clean.
/// Everything one label-efficiency run produced: the experiment pool plus
/// whichever arms (`--active` curves, `--weak` outcome) were requested.
struct LabelExperiment {
    seed: u64,
    candidates_total: usize,
    positives: usize,
    random: Option<em_label::ActiveOutcome>,
    committee: Option<em_label::ActiveOutcome>,
    weak: Option<em_label::WeakOutcome>,
}

/// The experiment pool is pinned independently of `--scale`: a
/// quarter-scale scenario blocked with a deliberately loose plan
/// (overlap-1 at K=2, coefficient 0.5), giving ~2k candidates of which
/// ~10% match. On the workflow's consolidated candidate set random
/// sampling is nearly as good as querying by committee; label efficiency
/// only matters on pools where most candidates are easy negatives.
const LABEL_POOL_SCALE: f64 = 0.25;

fn run_label_experiment(args: &Args) -> Result<LabelExperiment, Box<dyn std::error::Error>> {
    use em_core::labeling::{accession_of, award_of};
    use em_core::preprocess::{project_umetrics, project_usda};
    use em_datagen::{FlakyConfig, FlakyOracle, Scenario};
    use em_label::{ActiveConfig, Strategy, WeakConfig};

    let seed = args.seed.unwrap_or_else(|| args.base_cfg().seed);
    let scenario = Scenario::generate(ScenarioConfig::scaled(LABEL_POOL_SCALE).with_seed(seed))?;
    let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
    let s = project_usda(&scenario.usda, false)?;
    let plan = BlockingPlan { overlap_k: 2, oc_threshold: 0.5 };
    let candidates = run_blocking(&u, &s, &plan)?.consolidated;
    let positives = candidates
        .iter()
        .filter(|p| scenario.truth.is_match(&award_of(&u, p.left), &accession_of(&s, p.right)))
        .count();

    let mut exp = LabelExperiment {
        seed,
        candidates_total: candidates.len(),
        positives,
        random: None,
        committee: None,
        weak: None,
    };
    if args.active {
        for strategy in [Strategy::Random, Strategy::Committee] {
            let oracle = FlakyOracle::new(
                Oracle::new(&scenario.truth, OracleConfig::default()),
                FlakyConfig { p_unavailable: 0.2, p_timeout: 0.1, ..Default::default() },
            );
            let out = em_label::run_active(
                &u,
                &s,
                &candidates,
                &oracle,
                &scenario.truth,
                &ActiveConfig::new(strategy, seed),
                None,
            )?;
            match strategy {
                Strategy::Random => exp.random = Some(out),
                Strategy::Committee => exp.committee = Some(out),
            }
        }
    }
    if args.weak {
        exp.weak = Some(em_label::run_weak(
            &u,
            &s,
            &candidates,
            &scenario.truth,
            &WeakConfig::standard(seed),
        )?);
    }
    Ok(exp)
}

fn print_label_curve(tag: &str, out: &em_label::ActiveOutcome) {
    println!(
        "  {:<10} {:>5} {:>7} {:>8} {:>7} {:>8} {:>7} {:>19} {:>19}",
        "arm", "round", "labels", "queries", "retries", "degraded", "F1", "precision (95%)", "recall (95%)"
    );
    for r in &out.rounds {
        println!(
            "  {:<10} {:>5} {:>7} {:>8} {:>7} {:>8} {:>7.4} {:>9.4}–{:<9.4} {:>9.4}–{:<9.4}",
            tag,
            r.round,
            r.distinct,
            r.queries,
            r.retries,
            r.degraded,
            r.f1,
            r.precision.lo,
            r.precision.hi,
            r.recall.lo,
            r.recall.hi
        );
    }
}

fn print_label_report(exp: &LabelExperiment) {
    println!("\n## Label-efficient training — seed {}", exp.seed);
    println!(
        "  pool: {} candidates, {} true matches ({:.1}%) — x{} scenario, loose blocking (K=2, oc=0.5)",
        exp.candidates_total,
        exp.positives,
        100.0 * exp.positives as f64 / exp.candidates_total.max(1) as f64,
        LABEL_POOL_SCALE
    );
    if let (Some(random), Some(committee)) = (&exp.random, &exp.committee) {
        println!("\n  Active learning: query-by-committee vs random sampling");
        print_label_curve("random", random);
        print_label_curve("committee", committee);
        let target = random.final_f1();
        let random_spent = random.budget.distinct_pairs();
        let bound = (em_label::AL_TARGET_FRACTION * random_spent as f64).floor() as usize;
        match committee.labels_to_reach(target) {
            Some(al_spent) if al_spent <= bound => println!(
                "  acceptance: PASS — committee reached the random arm's final F1 ({target:.4}) \
                 with {al_spent} of {random_spent} labels (bound {bound})"
            ),
            Some(al_spent) => println!(
                "  acceptance: FAILED — committee needed {al_spent} labels for F1 {target:.4} \
                 (bound {bound} of {random_spent})"
            ),
            None => println!(
                "  acceptance: FAILED — committee never reached the random arm's final F1 \
                 ({target:.4})"
            ),
        }
    }
    if let Some(w) = &exp.weak {
        println!("\n  Weak supervision: {} labeling functions, EM label model", w.n_lfs);
        println!(
            "  coverage {:.3}, conflicts {}, kept {} training rows, EM iterations {}",
            w.coverage, w.conflicts, w.kept, w.em_iterations
        );
        println!("  learned LF accuracies:");
        for (name, acc) in &w.lf_accuracies {
            println!("    {name:<22} {acc:.4}");
        }
        println!(
            "  F1: majority vote {:.4}, label model {:.4}, trained committee {:.4} \
             (precision {:.4}–{:.4}, recall {:.4}–{:.4})",
            w.f1_majority,
            w.f1_label_model,
            w.f1,
            w.precision.lo,
            w.precision.hi,
            w.recall.lo,
            w.recall.hi
        );
        println!("  weak supervision trained with {} oracle labels", w.oracle_labels);
    }
}

fn label_curve_json(out: &em_label::ActiveOutcome) -> String {
    let rows: Vec<String> = out
        .rounds
        .iter()
        .map(|r| {
            format!(
                "      {{\"round\": {}, \"labels\": {}, \"queries\": {}, \"retries\": {}, \
                 \"degraded\": {}, \"f1\": {:.6}, \"precision_lo\": {:.6}, \"precision_hi\": {:.6}, \
                 \"recall_lo\": {:.6}, \"recall_hi\": {:.6}}}",
                r.round,
                r.distinct,
                r.queries,
                r.retries,
                r.degraded,
                r.f1,
                r.precision.lo,
                r.precision.hi,
                r.recall.lo,
                r.recall.hi
            )
        })
        .collect();
    format!("[\n{}\n    ]", rows.join(",\n"))
}

/// The `label_efficiency` block of `BENCH_pipeline.json` (trailing comma,
/// inserted before `"stages"` like the other optional blocks).
fn label_json(exp: &LabelExperiment) -> String {
    let mut fields = vec![
        format!("\"seed\": {}", exp.seed),
        format!("\"pool_scale\": {LABEL_POOL_SCALE}"),
        format!("\"candidates\": {}", exp.candidates_total),
        format!("\"positives\": {}", exp.positives),
    ];
    if let (Some(random), Some(committee)) = (&exp.random, &exp.committee) {
        let target = random.final_f1();
        fields.push(format!("\"target_f1\": {target:.6}"));
        fields.push(format!("\"random_labels_total\": {}", random.budget.distinct_pairs()));
        fields.push(format!(
            "\"al_labels_to_target\": {}",
            committee
                .labels_to_reach(target)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".to_string())
        ));
        fields.push(format!("\"al_target_fraction\": {}", em_label::AL_TARGET_FRACTION));
        fields.push(format!("\"random\": {}", label_curve_json(random)));
        fields.push(format!("\"active\": {}", label_curve_json(committee)));
    }
    if let Some(w) = &exp.weak {
        fields.push(format!(
            "\"weak\": {{\"n_lfs\": {}, \"coverage\": {:.6}, \"conflicts\": {}, \"kept\": {}, \
             \"oracle_labels\": {}, \"em_iterations\": {}, \"f1_majority\": {:.6}, \
             \"f1_label_model\": {:.6}, \"f1\": {:.6}, \"precision_lo\": {:.6}, \
             \"precision_hi\": {:.6}, \"recall_lo\": {:.6}, \"recall_hi\": {:.6}}}",
            w.n_lfs,
            w.coverage,
            w.conflicts,
            w.kept,
            w.oracle_labels,
            w.em_iterations,
            w.f1_majority,
            w.f1_label_model,
            w.f1,
            w.precision.lo,
            w.precision.hi,
            w.recall.lo,
            w.recall.hi
        ));
    }
    format!("  \"label_efficiency\": {{{}}},\n", fields.join(", "))
}

fn label_efficiency_section(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let exp = run_label_experiment(args)?;
    print_label_report(&exp);
    Ok(())
}

fn serve_chaos_section(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = args.base_cfg();
    if let Some(seed) = args.seed {
        cfg = cfg.with_seed(seed);
    }
    let seed = cfg.seed;
    let mut cs_cfg =
        if args.paper_scale { CaseStudyConfig::paper() } else { CaseStudyConfig::small() };
    cs_cfg.scenario = cfg;
    eprintln!("training the serving artifacts for --serve-chaos…");
    let artifacts = CaseStudy::new(cs_cfg).train_serving_artifacts()?;
    let report = run_serve_chaos(&artifacts, seed)?;
    print_chaos_report(&report);
    Ok(())
}

/// Runs the seeded chaos schedule against a freshly frozen snapshot of
/// the trained workflow, with the scenario's extra UMETRICS records as
/// the open-loop arrival stream. Returns an error — a nonzero exit — if
/// any request failed to terminate or any outcome diverged from the
/// fault-free run.
fn run_serve_chaos(
    artifacts: &em_core::pipeline::ServingArtifacts,
    seed: u64,
) -> Result<em_serve::ChaosReport, Box<dyn std::error::Error>> {
    use em_serve::{run_chaos, ChaosConfig, WorkflowSnapshot};
    let dir = std::env::temp_dir().join(format!("em-serve-chaos-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snapshot = WorkflowSnapshot::from_artifacts(artifacts);
    let result =
        run_chaos(snapshot, &artifacts.extra_umetrics, &ChaosConfig::new(seed, dir.clone()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = result?;
    if !report.terminal_outcomes {
        return Err("serve chaos: a request finished without a terminal outcome".into());
    }
    if !report.bit_identical {
        return Err("serve chaos: served outcomes diverged from the fault-free run".into());
    }
    if !report.shard_identical {
        return Err("serve chaos: sharded replay diverged from the fault-free run".into());
    }
    Ok(report)
}

fn print_chaos_report(r: &em_serve::ChaosReport) {
    println!("\n## Serve chaos — seeded fault schedule (seed {})", r.seed);
    println!(
        "  requests: {} arrivals, {} completed ({} degraded), {} terminally shed, \
         {} retries, {} queue-full rejections",
        r.arrivals, r.completed, r.degraded, r.shed, r.retried, r.queue_full
    );
    println!(
        "  durability: {} crashes, {} recoveries, {} WAL records replayed, {} torn tails repaired",
        r.crashes, r.recoveries, r.wal_records_replayed, r.torn_tails_repaired
    );
    println!(
        "  swaps: {} published (final epoch {}), {} rolled back, {} artifacts quarantined",
        r.swaps, r.final_epoch, r.swap_rollbacks, r.snapshots_quarantined
    );
    println!(
        "  latency: recovery total {:.2} ms (max {:.2} ms), slowest swap {:.2} ms",
        r.recovery_ms_total, r.recovery_ms_max, r.swap_latency_ms_max
    );
    println!(
        "  sharded audit: {} arrivals replayed across {} shards, bit-identical",
        r.shard_probes, r.shards
    );
    println!(
        "  every request reached a terminal outcome; \
         served outcomes bit-identical to the fault-free run"
    );
}

/// The `serve_chaos` block of `BENCH_pipeline.json` (trailing comma
/// included, matching the other optional blocks).
fn chaos_json(r: &em_serve::ChaosReport) -> String {
    format!(
        "  \"serve_chaos\": {{\"seed\": {}, \"arrivals\": {}, \"completed\": {}, \"shed\": {}, \
         \"retried\": {}, \"queue_full\": {}, \"degraded\": {}, \"crashes\": {}, \
         \"recoveries\": {}, \"wal_records_replayed\": {}, \"torn_tails_repaired\": {}, \
         \"swaps\": {}, \"swap_rollbacks\": {}, \"snapshots_quarantined\": {}, \
         \"recovery_ms_total\": {:.3}, \"recovery_ms_max\": {:.3}, \"swap_latency_ms_max\": {:.3}, \
         \"bit_identical\": {}, \"terminal_outcomes\": {}, \"final_epoch\": {}, \
         \"shards\": {}, \"shard_probes\": {}, \"shard_identical\": {}}},\n",
        r.seed,
        r.arrivals,
        r.completed,
        r.shed,
        r.retried,
        r.queue_full,
        r.degraded,
        r.crashes,
        r.recoveries,
        r.wal_records_replayed,
        r.torn_tails_repaired,
        r.swaps,
        r.swap_rollbacks,
        r.snapshots_quarantined,
        r.recovery_ms_total,
        r.recovery_ms_max,
        r.swap_latency_ms_max,
        r.bit_identical,
        r.terminal_outcomes,
        r.final_epoch,
        r.shards,
        r.shard_probes,
        r.shard_identical
    )
}

/// Standalone `--serve-load`: train the serving artifacts and run the
/// open-loop sweep, console output only.
fn serve_load_section(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = args.base_cfg();
    if let Some(seed) = args.seed {
        cfg = cfg.with_seed(seed);
    }
    let seed = cfg.seed;
    let mut cs_cfg =
        if args.paper_scale { CaseStudyConfig::paper() } else { CaseStudyConfig::small() };
    cs_cfg.scenario = cfg;
    eprintln!("training the serving artifacts for --serve-load…");
    let artifacts = CaseStudy::new(cs_cfg).train_serving_artifacts()?;
    let requested = em_parallel::threads().max(1);
    let _ = run_serve_load(&artifacts, seed, requested)?;
    Ok(())
}

/// The open-loop load benchmark over the sharded serve tier: calibrates
/// the 1-shard capacity from a warm pass over the arrival trace, then
/// sweeps offered rates 0.5/1/2/4/8 × C1 through the micro-batching
/// scheduler at shard counts 1, 2, and 4. Prints the latency-vs-load
/// tables and returns the `serve_load` JSON block (trailing comma
/// included, matching the other optional blocks).
///
/// Shard service legs are measured wall-clock on a **single** executor
/// thread — the virtual-time queueing model composes them as one core
/// per shard (see `em_serve::loadgen`), so saturation scaling reflects
/// the sharding itself, not the host's core count. The requested thread
/// count is restored before returning.
fn run_serve_load(
    artifacts: &em_core::pipeline::ServingArtifacts,
    seed: u64,
    requested: usize,
) -> Result<String, Box<dyn std::error::Error>> {
    use em_serve::{
        run_sweep, BatchPolicy, OverloadPolicy, ShardedMatchService, SweepConfig,
        WorkflowSnapshot,
    };

    em_parallel::set_threads(1);
    let out = (|| -> Result<String, Box<dyn std::error::Error>> {
        let arrivals = &artifacts.extra_umetrics;
        let snapshot = WorkflowSnapshot::from_artifacts(artifacts);
        let batch = BatchPolicy::default();
        // Finite watermark so the top offered rate visibly sheds; high
        // enough that saturation is reached long before shedding distorts
        // the achieved-throughput measurement.
        let overload = OverloadPolicy { shed_watermark: 64, ..OverloadPolicy::unbounded() };
        let n_requests = 1200usize;

        // Capacity calibration: one warm-up pass (indexes, extractor
        // probe cells, scratch), then a timed pass — the 1-shard service
        // rate every offered rate in the sweep is a multiple of.
        let single = ShardedMatchService::from_snapshot(snapshot.clone(), 1)?;
        let rows: Vec<usize> = (0..arrivals.n_rows()).collect();
        let _ = single.match_rows_timed(arrivals, &rows)?;
        let (_, warm_ms) = single.match_rows_timed(arrivals, &rows)?;
        let per_row_ms = warm_ms[0].max(1e-6) / arrivals.n_rows().max(1) as f64;
        let c1 = 1e3 / per_row_ms;
        let multipliers = [0.5, 1.0, 2.0, 4.0, 8.0];
        let rates: Vec<f64> = multipliers.iter().map(|m| m * c1).collect();

        println!("\n## Serve load — open-loop sharded sweep (seed {seed}, {n_requests} requests per rate)");
        println!("  calibration: {per_row_ms:.4} ms/row warm on 1 shard → C1 = {c1:.0} rows/s");
        println!(
            "  offered rates 0.5/1/2/4/8 × C1; batch close at {} rows or {:.1} ms; \
             shed watermark {} rows/shard",
            batch.max_batch, batch.close_deadline_ms, overload.shed_watermark
        );

        let mut sweeps = Vec::new();
        for shards in [1usize, 2, 4] {
            let tier = ShardedMatchService::from_snapshot(snapshot.clone(), shards)?;
            let sweep = run_sweep(
                &tier,
                arrivals,
                &SweepConfig { seed, n_requests, rates: rates.clone(), batch, overload },
            )?;
            println!("  {} shard(s) — saturation {:.0} req/s", shards, sweep.saturation_per_s);
            println!(
                "    {:>10} {:>11} {:>9} {:>6} {:>9} {:>9} {:>9} {:>13}",
                "offered/s", "achieved/s", "completed", "shed", "p50 ms", "p99 ms", "p999 ms",
                "closes sz/dl"
            );
            for r in &sweep.runs {
                println!(
                    "    {:>10.0} {:>11.0} {:>9} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>8}/{}",
                    r.offered_per_s,
                    r.achieved_per_s,
                    r.completed,
                    r.shed,
                    r.p50_ms,
                    r.p99_ms,
                    r.p999_ms,
                    r.size_closed,
                    r.deadline_closed
                );
            }
            sweeps.push((shards, sweep));
        }

        let sat = |n: usize| {
            sweeps
                .iter()
                .find(|(s, _)| *s == n)
                .map(|(_, sw)| sw.saturation_per_s)
                .unwrap_or(0.0)
        };
        let speedup = sat(4) / sat(1).max(1e-9);
        println!(
            "  saturation: 1 shard {:.0}/s, 2 shards {:.0}/s, 4 shards {:.0}/s \
             (4-shard vs 1-shard: {speedup:.2}x)",
            sat(1),
            sat(2),
            sat(4)
        );

        let available = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        let sweep_json: Vec<String> = sweeps
            .iter()
            .map(|(shards, sw)| {
                let runs: Vec<String> = sw
                    .runs
                    .iter()
                    .map(|r| {
                        format!(
                            "      {{\"offered_per_s\": {:.1}, \"achieved_per_s\": {:.1}, \
                             \"arrivals\": {}, \"completed\": {}, \"shed\": {}, \
                             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
                             \"max_ms\": {:.3}, \"batches\": {}, \"mean_batch_rows\": {:.2}, \
                             \"size_closed\": {}, \"deadline_closed\": {}, \"flush_closed\": {}}}",
                            r.offered_per_s,
                            r.achieved_per_s,
                            r.arrivals,
                            r.completed,
                            r.shed,
                            r.p50_ms,
                            r.p99_ms,
                            r.p999_ms,
                            r.max_ms,
                            r.batches,
                            r.mean_batch_rows,
                            r.size_closed,
                            r.deadline_closed,
                            r.flush_closed
                        )
                    })
                    .collect();
                // Occupancy at the top offered rate: the fully-loaded shape.
                let occupancy = sw
                    .runs
                    .last()
                    .map(|r| {
                        r.occupancy
                            .iter()
                            .map(|o| format!("{o:.3}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    })
                    .unwrap_or_default();
                let size_closed: u64 = sw.runs.iter().map(|r| r.size_closed).sum();
                let deadline_closed: u64 = sw.runs.iter().map(|r| r.deadline_closed).sum();
                format!(
                    "    {{\"shards\": {shards}, \"saturation_per_s\": {:.1}, \
                     \"size_closed\": {size_closed}, \"deadline_closed\": {deadline_closed}, \
                     \"occupancy_at_top_rate\": [{occupancy}],\n     \"runs\": [\n{}\n     ]}}",
                    sw.saturation_per_s,
                    runs.join(",\n")
                )
            })
            .collect();
        Ok(format!(
            "  \"serve_load\": {{\"seed\": {seed}, \"requests_per_rate\": {n_requests}, \
             \"available_parallelism\": {available}, \"batch_max\": {}, \
             \"batch_deadline_ms\": {:.1}, \"shed_watermark\": {}, \
             \"calibrated_1shard_per_s\": {c1:.1}, \"speedup_4x_vs_1x\": {speedup:.3},\n\
             \"sweeps\": [\n{}\n  ]}},\n",
            batch.max_batch,
            batch.close_deadline_ms,
            overload.shed_watermark,
            sweep_json.join(",\n")
        ))
    })();
    em_parallel::set_threads(requested);
    out
}

/// Pre-decodes each row's lowercased `AwardTitle` for the kernel stage —
/// the same once-per-row normalization the extraction cache performs.
#[allow(clippy::disallowed_methods)] // cache-build site: lowercase once per row
fn decoded_titles(t: &Table) -> Vec<std::sync::Arc<[char]>> {
    t.iter()
        .map(|r| {
            let s = r.get("AwardTitle").map(|v| v.render()).unwrap_or_default().to_lowercase();
            s.chars().collect()
        })
        .collect()
}

/// Figure 1: the paper's toy two-table example, end to end.
fn fig1() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 1 — matching two toy tables");
    let a = csv::read_str(
        "A",
        "Name,City,State\nDave Smith,Madison,WI\nJoe Wilson,San Jose,CA\nDan Smith,Middleton,WI\n",
    )?;
    let b = csv::read_str(
        "B",
        "Name,City,State\nDavid D. Smith,Madison,WI\nDaniel W. Smith,Middleton,WI\n",
    )?;
    let candidates = OverlapBlocker::new("Name", "Name", 1).block(&a, &b)?;
    let features = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
    let labeled = [
        (Pair::new(0, 0), true),
        (Pair::new(2, 1), true),
        (Pair::new(0, 1), false),
        (Pair::new(2, 0), false),
    ];
    let x = extract_vectors(
        &features,
        &a,
        &b,
        &labeled.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
    )?;
    let mut data = Dataset::new(features.names(), x, labeled.iter().map(|(_, y)| *y).collect())?;
    let imputer = impute_mean(&mut data);
    let model = DecisionTreeLearner::default().fit(&data)?;
    let mut out = Vec::new();
    for p in candidates.iter() {
        let mut row = extract_vectors(&features, &a, &b, &[p])?.remove(0);
        imputer.transform_row(&mut row);
        if model.predict(&row) {
            out.push(format!("(a{}, b{})", p.left + 1, p.right + 1));
        }
    }
    println!("  matches: {}   (paper: (a1, b1), (a3, b2))", out.join(", "));
    Ok(())
}

/// Figure 2: summary of the raw tables.
fn fig2(scenario: &em_datagen::Scenario) {
    println!("\n## Figure 2 — summary of the raw tables");
    println!("  {:<32} {:>9} {:>6}   paper rows", "table", "rows", "cols");
    let paper_rows = [
        ("UMETRICSAwardAggMatching", 1336usize),
        ("UMETRICSEmployeesMatching", 1_454_070),
        ("UMETRICSObjectCodesMatching", 4574),
        ("UMETRICSOrgUnitsMatching", 264),
        ("UMETRICSSubAwardMatching", 21_470),
        ("UMETRICSVendorMatching", 377_746),
        ("USDAAwardMatching", 1915),
    ];
    for t in scenario.raw_tables() {
        let paper = paper_rows
            .iter()
            .find(|(n, _)| *n == t.name())
            .map(|(_, r)| r.to_string())
            .unwrap_or_default();
        println!("  {:<32} {:>9} {:>6}   {}", t.name(), t.n_rows(), t.n_cols(), paper);
    }
    println!("  (employees/vendors/sub-awards are scaled ~100x; see DESIGN.md)");
}

/// Figures 5 & 6: one example matching pair by award number, one by title.
fn fig5_fig6(u: &Table, s: &Table, truth: &em_datagen::GroundTruth) {
    println!("\n## Figures 5/6 — example matching pairs");
    let mut by_number = None;
    let mut by_title = None;
    'outer: for (i, ur) in u.iter().enumerate() {
        let award = ur.get("AwardNumber").map(|v| v.render()).unwrap_or_default();
        for (j, sr) in s.iter().enumerate() {
            let acc = sr.get("AccessionNumber").map(|v| v.render()).unwrap_or_default();
            if !truth.is_match(&award, &acc) {
                continue;
            }
            let usda_award = sr.str("AwardNumber").unwrap_or("");
            let suffix = award_suffix(&award).unwrap_or("");
            if by_number.is_none() && !usda_award.is_empty() && usda_award == suffix {
                by_number = Some((i, j));
            } else if by_title.is_none() && usda_award.is_empty() {
                by_title = Some((i, j));
            }
            if by_number.is_some() && by_title.is_some() {
                break 'outer;
            }
        }
    }
    let show = |label: &str, pair: Option<(usize, usize)>| {
        let Some((i, j)) = pair else {
            println!("  {label}: no example found at this scale/seed");
            return;
        };
        println!("  {label}:");
        println!(
            "    UMETRICS: {} | {}",
            u.get(i, "AwardNumber").unwrap().render(),
            u.get(i, "AwardTitle").unwrap().render()
        );
        println!(
            "    USDA:     acc={} award={} | {}",
            s.get(j, "AccessionNumber").unwrap().render(),
            s.get(j, "AwardNumber").unwrap().render(),
            s.get(j, "AwardTitle").unwrap().render()
        );
    };
    show("Figure 5 (match via award number, rule M1)", by_number);
    show("Figure 6 (match via title, award number missing)", by_title);
}

fn print_report(r: &CaseStudyReport, args: &Args) {
    let wants = |s: &str| args.sections.iter().any(|x| x == s);
    if wants("blocking") {
        println!("\n## Section 7 — blocking (paper: C2=2937 C3=1375 C2∩C3=1140 C2−C3=1797 C3−C2=235 C=3177)");
        println!("  |C1|={} |C2|={} |C3|={}", r.c1, r.c2, r.c3);
        println!(
            "  |C2∩C3|={} |C2−C3|={} |C3−C2|={} |C|={}",
            r.c2_and_c3, r.c2_only, r.c3_only, r.consolidated
        );
        println!("  sweep (paper: K=1→200K, K=7→hundreds): {:?}", r.sweep);
        println!("  blocking recall vs truth: {:.1}%", 100.0 * r.blocking_recall);
    }
    if wants("blockdebug") {
        println!("\n## Section 7 — blocking-debugger audit (paper: top pairs were not matches)");
        println!(
            "  {} of top {} excluded pairs were true matches",
            r.debugger_true_matches, r.debugger_inspected
        );
    }
    if wants("labeling") {
        println!("\n## Section 8 — labeling (paper: rounds of 100; final 68/200/32; 22 cross-check mismatches, 4 corrected)");
        for (i, round) in r.label_rounds.iter().enumerate() {
            println!(
                "  round {}: {} → {}Y/{}N/{}U  mismatches={} corrected={}",
                i + 1,
                round.sampled,
                round.yes,
                round.no,
                round.unsure,
                round.crosscheck_mismatches,
                round.corrections
            );
        }
        let (y, n, u) = r.label_counts;
        println!("  final: {y}Y/{n}N/{u}U   LOO label-debug leads: {}", r.label_debug_hits);
    }
    if wants("selection") {
        println!("\n## Section 9 — matcher selection (paper: RF wins round 1; DT wins round 2 at P=97% R=95% F1=94.7%)");
        for (title, rows) in [
            ("round 1 (case-sensitive)", &r.selection_round1),
            ("round 2 (+case-insensitive)", &r.selection_round2),
        ] {
            println!("  {title}:");
            for m in rows {
                println!(
                    "    {:<20} P={:>5.1}% R={:>5.1}% F1={:>5.1}%",
                    m.name,
                    100.0 * m.precision,
                    100.0 * m.recall,
                    100.0 * m.f1
                );
            }
        }
        println!("  split-half mismatches mined after round 1: {}", r.mismatches_round1);
    }
    if wants("matching") {
        println!("\n## Figure 8 — initial workflow (paper: 210 sure + 807 predicted = 1017)");
        println!(
            "  sure={} predicted={} total={}",
            r.initial_sure, r.initial_predicted, r.initial_total
        );
    }
    if wants("rule2") {
        println!("\n## Section 10 — revised match definition (paper: 473 in A×B, 411 in C, 397 predicted)");
        println!(
            "  rule pairs: {} in A×B, {} in C, {} predicted",
            r.rule2_in_cartesian, r.rule2_in_candidates, r.rule2_predicted
        );
    }
    if wants("patch") {
        let p = &r.patched;
        println!("\n## Figure 9 — patched workflow (paper: 683+55 sure, 2556/1220 candidates, 399+0 predicted, 1137 total)");
        println!(
            "  sure: {}+{}  candidates: {}/{}  predicted: {}+{}  total: {}",
            p.sure_original,
            p.sure_extra,
            p.candidates_original,
            p.candidates_extra,
            p.predicted_original,
            p.predicted_extra,
            p.total
        );
        let m = &r.multiplicity;
        println!(
            "  multiplicity: 1:1={} 1:N={} M:1={} M:N={} ({:.1}% not one-to-one; paper: \"does not affect many matches\")",
            m.one_to_one,
            m.one_to_many,
            m.many_to_one,
            m.many_to_many,
            100.0 * m.non_one_to_one_rate()
        );
        println!(
            "  cluster-level view: {} clusters, {} of them 1:1",
            r.clusters.0, r.clusters.1
        );
    }
    if wants("estimate") {
        println!("\n## Section 11 — Corleone estimation");
        println!("  paper: ours P(79.6,86.0) R(96.8,99.4) @200; P(75.2,80.3) R(98.1,99.6) @400");
        println!("         IRIS P(100,100) R(52.7,62.1) @200; P(100,100) R(65.1,71.8) @400");
        for e in &r.estimates {
            println!(
                "  {:<10} @{:>3}: P∈{} R∈{}",
                e.matcher, e.n_labels, e.estimate.precision, e.estimate.recall
            );
        }
    }
    if wants("final") {
        println!("\n## Section 12 — negative rules (paper: P(96.7,98.8) R(94.2,97.05); 845 final matches)");
        for e in &r.final_estimates {
            println!(
                "  {:<16} @{:>3}: P∈{} R∈{}",
                e.matcher, e.n_labels, e.estimate.precision, e.estimate.recall
            );
        }
        println!("  flipped={}  final matches={}", r.flipped, r.final_total);
        println!("\n## Ground truth (not observable in the paper)");
        for (name, s) in &r.truth_scores {
            println!(
                "  {:<16} P={:>5.1}% R={:>5.1}% F1={:>5.1}% (tp={} fp={} fn={})",
                name,
                100.0 * s.precision,
                100.0 * s.recall,
                100.0 * s.f1,
                s.tp,
                s.fp,
                s.fn_
            );
        }
    }
    if wants("resilience") {
        let res = &r.resilience;
        println!("\n## Resilience — faults absorbed by this run (not part of the paper)");
        if res.is_clean() {
            println!("  clean run: no faults injected or absorbed (try --faults)");
        } else {
            println!(
                "  oracle: {} transient faults, {} retries, {} ms virtual backoff",
                res.oracle_faults, res.oracle_retries, res.total_backoff_ms
            );
            println!(
                "  labels degraded to Unsure after exhausted retries: {}",
                res.degraded_labels
            );
            for (award, acc) in &res.degraded_pairs {
                println!("    degraded pair: award={award} accession={acc}");
            }
            println!("  CSV rows quarantined during ingest: {}", res.quarantined_rows);
            if !res.resumed_stages.is_empty() {
                println!("  stages restored from checkpoint: {}", res.resumed_stages.join(", "));
            }
        }
    }
}

/// Ablations A-1 (blocking-scheme union members) and A-2 (casing strategy).
fn ablations(
    u: &Table,
    s: &Table,
    scenario: &em_datagen::Scenario,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Ablation A-1 — drop one blocking scheme from the union");
    let out = run_blocking(u, s, &BlockingPlan::default())?;
    let truth_recall = |set: &em_blocking::CandidateSet| -> f64 {
        let total = scenario.truth.n_matches_initial();
        if total == 0 {
            return 1.0;
        }
        let kept = set
            .iter()
            .filter(|p| {
                scenario.truth.is_match(
                    &u.get(p.left, "AwardNumber").unwrap().render(),
                    &s.get(p.right, "AccessionNumber").unwrap().render(),
                )
            })
            .count();
        kept as f64 / total as f64
    };
    let variants = [
        ("C1∪C2∪C3 (full plan)", out.consolidated.clone()),
        ("C1∪C2 (no overlap coefficient)", out.c1.union(&out.c2)),
        ("C1∪C3 (no overlap blocker)", out.c1.union(&out.c3)),
        ("C2∪C3 (no rule scheme)", out.c2.union(&out.c3)),
        ("C1 only", out.c1.clone()),
    ];
    println!("  {:<34} {:>10} {:>14}", "variant", "pairs", "truth recall");
    for (name, set) in &variants {
        println!("  {:<34} {:>10} {:>13.1}%", name, set.len(), 100.0 * truth_recall(set));
    }

    println!("\n## Ablation A-2 — casing strategies (paper footnote 8: global lowercasing loses information)");
    let candidates = out.consolidated.clone();
    let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
    let (labeled, _) = run_labeling(u, s, &candidates, &oracle, &[100, 100], 11)?;
    let m1 = RuleSet {
        positive: vec![EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber")],
        negative: vec![],
    };
    // Variant tables with titles globally lowercased at pre-processing time.
    #[allow(clippy::disallowed_methods)] // ablation deliberately lowercases whole columns
    let lower = |t: &Table| -> Result<Table, em_table::TableError> {
        let lowered = t.add_column("LoweredTitle", DataType::Str, |r| {
            r.str("AwardTitle").map(|s| s.to_lowercase()).into()
        })?;
        lowered.drop_column("AwardTitle")?.rename_column("LoweredTitle", "AwardTitle")
    };
    let (ul, sl) = (lower(u)?, lower(s)?);
    println!("  {:<40} {:>10} {:>8}", "strategy", "features", "best F1");
    for (name, (ta, tb), stage) in [
        ("case-sensitive features", (u, s), MatcherStage::new(11)),
        (
            "case-insensitive feature variants",
            (u, s),
            MatcherStage::new(11).with_case_insensitive(),
        ),
        ("global lowercasing at pre-processing", (&ul, &sl), MatcherStage::new(11)),
    ] {
        let features = auto_features(ta, tb, &stage.feature_opts);
        let (data, _) = build_training_data(ta, tb, &features, &labeled, &m1)?;
        let ranking = select_matcher(&data, &stage)?;
        println!(
            "  {:<40} {:>10} {:>7.1}%  (winner: {})",
            name,
            features.len(),
            100.0 * ranking[0].f1(),
            ranking[0].learner
        );
    }

    // A-4: could raising the decision threshold have replaced the negative
    // rules? Sweep thresholds on the trained matcher and compare against
    // the rule repair at the default threshold.
    println!("\n## Ablation A-4 — decision-threshold sweep vs negative rules");
    let spec = em_core::spec::WorkflowSpec::umetrics_usda();
    let rules = spec.rules();
    let stage = spec.matcher_stage(11);
    let features = auto_features(u, s, &stage.feature_opts);
    let (data, imputer) = build_training_data(u, s, &features, &labeled, &rules)?;
    let ranking = select_matcher(&data, &stage)?;
    let matcher = train_matcher(features, imputer, &data, &ranking[0].learner, &stage)?;

    let sure = rules.sure_matches(u, s)?;
    let cand = out.consolidated.minus(&sure);
    let probs = matcher.probabilities(u, s, &cand)?;
    let score = |matches: &em_blocking::CandidateSet| -> (f64, f64) {
        let mut tp = 0usize;
        for p in matches.iter() {
            let award = u.get(p.left, "AwardNumber").unwrap().render();
            let acc = s.get(p.right, "AccessionNumber").unwrap().render();
            if scenario.truth.is_match(&award, &acc) {
                tp += 1;
            }
        }
        let precision = if matches.is_empty() { 1.0 } else { tp as f64 / matches.len() as f64 };
        let recall = tp as f64 / scenario.truth.n_matches_initial().max(1) as f64;
        (precision, recall)
    };
    println!("  {:<26} {:>10} {:>8} {:>8}", "strategy", "matches", "P", "R");
    for t in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let mut m = sure.clone();
        for (pair, p) in &probs {
            if *p >= t {
                m.add(*pair, "model");
            }
        }
        let (prec, rec) = score(&m);
        println!(
            "  {:<26} {:>10} {:>7.1}% {:>7.1}%",
            format!("threshold {t}"),
            m.len(),
            100.0 * prec,
            100.0 * rec
        );
    }
    // Negative rules at the default threshold.
    let mut predicted = em_blocking::CandidateSet::new("pred");
    for (pair, p) in &probs {
        if *p >= 0.5 {
            predicted.add(*pair, "model");
        }
    }
    let (kept, _flipped) = rules.apply_negative(u, s, &predicted)?;
    let final_m = sure.union(&kept);
    let (prec, rec) = score(&final_m);
    println!(
        "  {:<26} {:>10} {:>7.1}% {:>7.1}%",
        "negative rules @0.5",
        final_m.len(),
        100.0 * prec,
        100.0 * rec
    );
    Ok(())
}
