//! Quick breakdown of where feature-extraction time goes: per feature
//! kind, at the small-scale bench fixture. Development aid for the
//! similarity-kernel engine; not part of the reproduction output.

use em_bench::fixtures_cfg;
use em_blocking::Pair;
use em_core::blocking_plan::{run_blocking, BlockingPlan};
use em_datagen::ScenarioConfig;
use em_features::{auto_features, extract_vectors, FeatureOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    em_parallel::set_threads(1);
    let fx = fixtures_cfg(ScenarioConfig::small());
    let (u, s) = (&fx.umetrics, &fx.usda);
    let pairs: Vec<Pair> = run_blocking(u, s, &BlockingPlan::default())?.consolidated.to_vec();
    let features = auto_features(
        u,
        s,
        &FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive(),
    );
    eprintln!("{} pairs, {} features, tables {}x{}", pairs.len(), features.len(), u.n_rows(), s.n_rows());

    // Whole extraction, repeated to stabilize.
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        let x = extract_vectors(&features, u, s, &pairs)?;
        eprintln!("extract_vectors: {:.2} ms ({} rows)", t0.elapsed().as_secs_f64() * 1e3, x.len());
    }

    // One-pair call: near-pure cache-build cost for the used rows of one pair.
    let one = [pairs[0]];
    let t0 = std::time::Instant::now();
    let _ = extract_vectors(&features, u, s, &one)?;
    eprintln!("one pair: {:.2} ms", t0.elapsed().as_secs_f64() * 1e3);

    // Doubled pairs: marginal per-pair cost is memoized away, so the delta
    // vs the 73-pair call shows memo-hit overhead only.
    let mut doubled = pairs.clone();
    doubled.extend(pairs.iter().copied());
    let t0 = std::time::Instant::now();
    let _ = extract_vectors(&features, u, s, &doubled)?;
    eprintln!("doubled pairs ({}): {:.2} ms", doubled.len(), t0.elapsed().as_secs_f64() * 1e3);

    // Empty-pairs call: isolates the cache-build cost.
    let t0 = std::time::Instant::now();
    let _ = extract_vectors(&features, u, s, &[])?;
    eprintln!("cache build only (0 pairs): {:.2} ms", t0.elapsed().as_secs_f64() * 1e3);

    // Per-kind: direct Feature::compute over all pairs, one kind at a time.
    let mut by_kind: Vec<(String, f64)> = Vec::new();
    for f in &features.features {
        let t0 = std::time::Instant::now();
        let mut acc = 0.0;
        for p in &pairs {
            let va = u.row(p.left).unwrap().get(&f.left_attr).unwrap();
            let vb = s.row(p.right).unwrap().get(&f.right_attr).unwrap();
            let v = f.compute(va, vb);
            if v.is_finite() {
                acc += v;
            }
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(acc);
        by_kind.push((f.name.clone(), ms));
    }
    by_kind.sort_by(|a, b| b.1.total_cmp(&a.1));
    eprintln!("\ndirect Feature::compute per feature (top 15):");
    for (name, ms) in by_kind.iter().take(15) {
        eprintln!("  {name:<40} {ms:>8.3} ms");
    }
    let total: f64 = by_kind.iter().map(|(_, ms)| ms).sum();
    eprintln!("  total direct: {total:.2} ms");
    Ok(())
}
