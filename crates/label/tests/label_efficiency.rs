//! End-to-end guarantees of the label-efficient training subsystem:
//!
//! - the active-learning curve is **bit-identical** at 1, 2, and 4 threads;
//! - a run crashed mid-loop **resumes bit-identically** from its round
//!   checkpoints (and a checkpoint dir refuses a different config);
//! - query-by-committee reaches the random baseline's final F1 with at most
//!   [`AL_TARGET_FRACTION`] of the random arm's label budget — the PR's
//!   acceptance bound;
//! - weak supervision trains a working matcher with **zero** oracle labels.

use em_core::blocking_plan::{run_blocking, BlockingPlan};
use em_core::preprocess::{project_umetrics, project_usda};
use em_core::CoreError;
use em_datagen::{
    FlakyConfig, FlakyOracle, GroundTruth, Oracle, OracleConfig, Scenario, ScenarioConfig,
};
use em_label::{
    run_active, run_weak, ActiveConfig, ActiveOutcome, Strategy, WeakConfig, AL_TARGET_FRACTION,
};
use em_table::Table;

/// Tests that flip the global `em_parallel` thread override must not run
/// concurrently with each other.
static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct Fixture {
    u: Table,
    s: Table,
    truth: GroundTruth,
    candidates: em_blocking::CandidateSet,
}

/// The label-efficiency pool: a quarter-scale scenario blocked with a
/// deliberately *loose* plan (overlap-1 at K=2, coefficient 0.5), so the
/// candidate set is realistically imbalanced (~10% positives). On the
/// workflow's consolidated set random sampling is nearly as good as
/// querying by committee — the whole point of active learning is pools
/// where most candidates are easy negatives.
fn fixture() -> Fixture {
    let scenario = Scenario::generate(ScenarioConfig::scaled(0.25)).unwrap();
    let u = project_umetrics(&scenario.award_agg, &scenario.employees).unwrap();
    let s = project_usda(&scenario.usda, false).unwrap();
    let plan = BlockingPlan { overlap_k: 2, oc_threshold: 0.5 };
    let candidates = run_blocking(&u, &s, &plan).unwrap().consolidated;
    Fixture { u, s, truth: scenario.truth, candidates }
}

fn flaky(truth: &GroundTruth) -> FlakyOracle<'_> {
    FlakyOracle::new(
        Oracle::new(truth, OracleConfig::default()),
        FlakyConfig { p_unavailable: 0.2, p_timeout: 0.1, ..Default::default() },
    )
}

fn run(f: &Fixture, cfg: &ActiveConfig, dir: Option<&std::path::Path>) -> ActiveOutcome {
    let oracle = flaky(&f.truth);
    run_active(&f.u, &f.s, &f.candidates, &oracle, &f.truth, cfg, dir).unwrap()
}

fn assert_curves_bit_identical(a: &ActiveOutcome, b: &ActiveOutcome, what: &str) {
    assert_eq!(a.rounds.len(), b.rounds.len(), "{what}: round count");
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.f1.to_bits(), y.f1.to_bits(), "{what}: f1 differs at round {}", x.round);
        assert_eq!(
            x.precision.lo.to_bits(),
            y.precision.lo.to_bits(),
            "{what}: precision.lo differs at round {}",
            x.round
        );
        assert_eq!(
            x.recall.hi.to_bits(),
            y.recall.hi.to_bits(),
            "{what}: recall.hi differs at round {}",
            x.round
        );
        assert_eq!(x, y, "{what}: curve row differs at round {}", x.round);
    }
    assert_eq!(a.labeled.len(), b.labeled.len(), "{what}: labeled-set size");
    for lp in a.labeled.iter() {
        assert_eq!(b.labeled.get(&lp.pair), Some(lp.label), "{what}: label for {:?}", lp.pair);
    }
    assert_eq!(a.budget.queries(), b.budget.queries(), "{what}: ledger queries");
    assert_eq!(a.budget.distinct_pairs(), b.budget.distinct_pairs(), "{what}: ledger distinct");
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("em-label-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn active_curve_is_thread_invariant() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let f = fixture();
    let cfg = ActiveConfig::new(Strategy::Committee, 7);
    em_parallel::set_threads(1);
    let o1 = run(&f, &cfg, None);
    em_parallel::set_threads(2);
    let o2 = run(&f, &cfg, None);
    em_parallel::set_threads(4);
    let o4 = run(&f, &cfg, None);
    em_parallel::set_threads(0);
    assert_curves_bit_identical(&o1, &o2, "1 vs 2 threads");
    assert_curves_bit_identical(&o1, &o4, "1 vs 4 threads");
    assert!(o1.final_f1() > 0.5, "committee arm should learn something: {}", o1.final_f1());
    assert_eq!(o1.resumed_rounds, 0);
}

#[test]
fn crashed_run_resumes_bit_identically() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    em_parallel::set_threads(2);
    let f = fixture();
    let baseline = run(&f, &ActiveConfig::new(Strategy::Committee, 7), None);

    let dir = temp_dir("resume");
    let mut crashing = ActiveConfig::new(Strategy::Committee, 7);
    crashing.crash_after_round = Some(2);
    let oracle = flaky(&f.truth);
    let err = run_active(&f.u, &f.s, &f.candidates, &oracle, &f.truth, &crashing, Some(&dir))
        .unwrap_err();
    assert!(
        matches!(err, CoreError::InjectedCrash(_)),
        "crash hook must surface as InjectedCrash, got {err:?}"
    );

    // Resume with the hook cleared: rounds 0..=2 load from checkpoint, the
    // rest recompute — and the whole curve equals the uninterrupted run's.
    let resumed = run(&f, &ActiveConfig::new(Strategy::Committee, 7), Some(&dir));
    em_parallel::set_threads(0);
    assert_eq!(resumed.resumed_rounds, 3, "rounds 0, 1, 2 must come from checkpoints");
    assert_curves_bit_identical(&baseline, &resumed, "crash-resume vs uninterrupted");

    // The same dir refuses a different experiment outright.
    let other = ActiveConfig::new(Strategy::Random, 7);
    let oracle = flaky(&f.truth);
    let err = run_active(&f.u, &f.s, &f.candidates, &oracle, &f.truth, &other, Some(&dir))
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Checkpoint(ref m) if m.contains("different active-learning configuration")),
        "config guard must refuse a mismatched fingerprint, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committee_halves_the_label_budget() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    em_parallel::set_threads(2);
    let f = fixture();
    let random = run(&f, &ActiveConfig::new(Strategy::Random, 7), None);
    let active = run(&f, &ActiveConfig::new(Strategy::Committee, 7), None);
    em_parallel::set_threads(0);

    let target = random.final_f1();
    assert!(target > 0.5, "random baseline should learn something: {target}");
    let random_spent = random.budget.distinct_pairs();
    let al_spent = active
        .labels_to_reach(target)
        .expect("active arm never reached the random baseline's final F1");
    assert!(
        (al_spent as f64) <= AL_TARGET_FRACTION * random_spent as f64,
        "active learning spent {al_spent} labels to reach F1 {target:.3}; \
         the bound is {AL_TARGET_FRACTION} x {random_spent}"
    );
}

#[test]
fn weak_supervision_needs_zero_oracle_labels() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let f = fixture();
    let cfg = WeakConfig::standard(7);
    em_parallel::set_threads(1);
    let w1 = run_weak(&f.u, &f.s, &f.candidates, &f.truth, &cfg).unwrap();
    em_parallel::set_threads(4);
    let w4 = run_weak(&f.u, &f.s, &f.candidates, &f.truth, &cfg).unwrap();
    em_parallel::set_threads(0);

    assert_eq!(w1.oracle_labels, 0, "weak supervision must not touch the oracle");
    assert_eq!(w1.f1.to_bits(), w4.f1.to_bits(), "weak F1 depends on thread count");
    assert_eq!(w1, w4, "weak outcome depends on thread count");
    assert!(w1.coverage > 0.5, "LF set should cover most candidates: {}", w1.coverage);
    assert!(w1.kept > 0, "posterior band kept no training rows");
    assert!(
        w1.f1 > 0.6,
        "zero-label matcher should still be useful: f1={} (majority {}, label model {})",
        w1.f1,
        w1.f1_majority,
        w1.f1_label_model
    );
    assert!(
        w1.f1_label_model >= w1.f1_majority - 0.05,
        "the generative model should not fall far behind majority vote: {} vs {}",
        w1.f1_label_model,
        w1.f1_majority
    );
}
