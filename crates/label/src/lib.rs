//! # em-label — label-efficient training for entity matching
//!
//! The case study buys its matcher with ~300 expert labels drawn uniformly
//! from the candidate set. This crate implements the two standard ways to
//! spend that budget better, both fully deterministic and resumable:
//!
//! - **Active learning** ([`active`]): an iterative
//!   query-by-committee loop — seed batch, committee fit, vote-entropy +
//!   margin selection, oracle query under the existing retry/backoff
//!   policy, refit — with per-round checkpoints so a crash mid-loop
//!   resumes bit-identically, and a label-efficiency curve (F1 vs #labels,
//!   with [`em_estimate`] intervals) against a random-sampling baseline.
//! - **Weak supervision** ([`weak`]): a labeling-function DSL layered on
//!   [`em_rules::spec`] predicates (threshold, pattern, and
//!   attr-equivalence LFs voting MATCH / NO-MATCH / ABSTAIN), resolved by
//!   majority vote and by a seeded generative accuracy-weighted label
//!   model fit with EM — training a matcher with **zero** oracle labels.
//!
//! Everything routes through [`em_parallel::Executor`], so results are
//! bit-identical at any thread count; the active loop's checkpoints use
//! [`em_core::checkpoint::Checkpoint`]'s bit-exact float round-trip, so a
//! resumed curve equals the uninterrupted one to the last bit.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod active;
pub mod weak;

pub use active::{
    run_active, ActiveConfig, ActiveOutcome, ActiveRound, Strategy, AL_TARGET_FRACTION,
};
pub use weak::{
    majority_vote, run_weak, standard_lfs, GenerativeModel, LabelingFunction, LfMatrix, Vote,
    WeakConfig, WeakOutcome,
};
