//! Weak supervision: labeling functions, a label model, and zero-oracle
//! training.
//!
//! A **labeling function** (LF) votes MATCH / NO-MATCH / ABSTAIN on a
//! candidate pair. The DSL layers directly on the predicates the repo
//! already trusts:
//!
//! - **attr-equivalence** and **pattern** LFs wrap [`em_rules::spec`]
//!   descriptions — the same declarative records the workflow snapshots
//!   persist — materialized through [`RuleSetDesc::build`]: a positive rule
//!   firing votes MATCH, a negative rule firing votes NO-MATCH, anything
//!   else abstains;
//! - **threshold** LFs read one generated feature column (e.g. the
//!   case-insensitive title Jaccard): values at or above `yes_min` vote
//!   MATCH, at or below `no_max` vote NO-MATCH, the band between (and
//!   `NaN`) abstains.
//!
//! Votes are resolved two ways: [`majority_vote`] (the obvious baseline)
//! and a seeded **generative label model** ([`GenerativeModel`]) that
//! learns a per-LF accuracy by expectation–maximization — LFs that agree
//! with the consensus get upweighted, contrarian ones downweighted — and
//! emits a posterior match probability per pair. [`run_weak`] turns those
//! posteriors into a training set via
//! [`em_ml::dataset_from_probabilistic`], fits a committee, and scores it
//! against ground truth: an entire matcher trained with **zero** oracle
//! labels.

use crate::active::{committee_predictions, score_predictions};
use em_blocking::{CandidateSet, Pair};
use em_core::CoreError;
use em_datagen::GroundTruth;
use em_estimate::Interval;
use em_features::{auto_features, extract_vectors, FeatureOptions, FeatureSet};
use em_ml::dataset::impute_mean;
use em_ml::{dataset_from_probabilistic, CommitteeLearner};
use em_rules::spec::{RuleDesc, RuleKeyKind, RulePolarity, RuleSetDesc};
use em_table::Table;

/// One labeling-function vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// The LF believes the pair matches.
    Match,
    /// The LF believes the pair does not match.
    NoMatch,
    /// The LF has no opinion on this pair.
    Abstain,
}

/// One labeling function.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelingFunction {
    /// Votes by thresholding one generated feature column: `>= yes_min` →
    /// MATCH, `<= no_max` → NO-MATCH, the band between (and `NaN`) abstains.
    Threshold {
        /// Display name.
        name: String,
        /// Feature column name (see [`em_features::FeatureSet::names`]).
        feature: String,
        /// Largest value that still votes NO-MATCH.
        no_max: f64,
        /// Smallest value that votes MATCH.
        yes_min: f64,
    },
    /// Wraps an [`em_rules::spec`] predicate: a positive rule firing votes
    /// MATCH, a negative rule firing votes NO-MATCH, otherwise ABSTAIN.
    Rule(RuleDesc),
}

impl LabelingFunction {
    /// A threshold LF over a feature column.
    pub fn threshold(
        name: impl Into<String>,
        feature: impl Into<String>,
        no_max: f64,
        yes_min: f64,
    ) -> LabelingFunction {
        LabelingFunction::Threshold {
            name: name.into(),
            feature: feature.into(),
            no_max,
            yes_min,
        }
    }

    /// An attr-equivalence LF: trimmed attribute equality votes MATCH.
    pub fn attr_equivalence(
        name: impl Into<String>,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
    ) -> LabelingFunction {
        LabelingFunction::Rule(RuleDesc {
            polarity: RulePolarity::Positive,
            kind: RuleKeyKind::Attr,
            name: name.into(),
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
        })
    }

    /// A pattern LF: the award-suffix pattern extracted on the left equals
    /// the right attribute — votes MATCH.
    pub fn pattern(
        name: impl Into<String>,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
    ) -> LabelingFunction {
        LabelingFunction::Rule(RuleDesc {
            polarity: RulePolarity::Positive,
            kind: RuleKeyKind::Suffix,
            name: name.into(),
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
        })
    }

    /// A negative pattern LF: both sides carry comparable suffix keys that
    /// differ — votes NO-MATCH.
    pub fn negative_pattern(
        name: impl Into<String>,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
    ) -> LabelingFunction {
        LabelingFunction::Rule(RuleDesc {
            polarity: RulePolarity::Negative,
            kind: RuleKeyKind::Suffix,
            name: name.into(),
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
        })
    }

    /// The LF's display name.
    pub fn name(&self) -> &str {
        match self {
            LabelingFunction::Threshold { name, .. } => name,
            LabelingFunction::Rule(desc) => &desc.name,
        }
    }
}

/// The standard LF set for the UMETRICS–USDA scenario: the workflow's own
/// rule predicates as pattern LFs, plus title-similarity thresholds on the
/// case-insensitive Jaccard features.
pub fn standard_lfs() -> Vec<LabelingFunction> {
    vec![
        LabelingFunction::pattern("lf:M1", "AwardNumber", "AwardNumber"),
        LabelingFunction::pattern("lf:award=project", "AwardNumber", "ProjectNumber"),
        LabelingFunction::negative_pattern("lf:neg:award", "AwardNumber", "AwardNumber"),
        LabelingFunction::negative_pattern("lf:neg:project", "AwardNumber", "ProjectNumber"),
        LabelingFunction::threshold("lf:title_jac_q3", "AwardTitle_jac_q3_lc", 0.25, 0.6),
        LabelingFunction::threshold("lf:title_cos_ws", "AwardTitle_cos_ws_lc", 0.3, 0.65),
    ]
}

/// The vote matrix of an LF set over a candidate list: one `i8` per
/// (pair, LF) — `+1` MATCH, `-1` NO-MATCH, `0` ABSTAIN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfMatrix {
    /// LF display names, in application order.
    pub names: Vec<String>,
    /// One row per pair, one vote per LF.
    pub votes: Vec<Vec<i8>>,
}

impl LfMatrix {
    /// Number of pairs voted on.
    pub fn n_pairs(&self) -> usize {
        self.votes.len()
    }

    /// Number of labeling functions.
    pub fn n_lfs(&self) -> usize {
        self.names.len()
    }

    /// Fraction of pairs with at least one non-abstain vote.
    pub fn coverage(&self) -> f64 {
        if self.votes.is_empty() {
            return 0.0;
        }
        let covered = self.votes.iter().filter(|row| row.iter().any(|&v| v != 0)).count();
        covered as f64 / self.votes.len() as f64
    }

    /// Pairs where at least one LF votes MATCH and another NO-MATCH — the
    /// disagreements only a label model can adjudicate.
    pub fn conflicts(&self) -> usize {
        self.votes
            .iter()
            .filter(|row| row.iter().any(|&v| v > 0) && row.iter().any(|&v| v < 0))
            .count()
    }
}

/// Evaluates every LF on every pair. Threshold LFs read the pre-extracted
/// feature matrix `x` (aligned with `pairs`); rule LFs materialize their
/// [`RuleDesc`] through [`RuleSetDesc::build`] once and probe row pairs.
pub fn apply_lfs(
    lfs: &[LabelingFunction],
    umetrics: &Table,
    usda: &Table,
    pairs: &[Pair],
    features: &FeatureSet,
    x: &[Vec<f64>],
) -> Result<LfMatrix, CoreError> {
    // Resolve each LF to a closure-free evaluator up front so unknown
    // feature names fail loudly, before any pair is voted on.
    enum Eval {
        Threshold { col: usize, no_max: f64, yes_min: f64 },
        Rule { set: em_rules::RuleSet, positive: bool },
    }
    let names: Vec<String> = features.names();
    let mut evals = Vec::with_capacity(lfs.len());
    for lf in lfs {
        evals.push(match lf {
            LabelingFunction::Threshold { name, feature, no_max, yes_min } => {
                let col = names.iter().position(|n| n == feature).ok_or_else(|| {
                    CoreError::Pipeline(format!(
                        "threshold LF {name:?} names unknown feature {feature:?}"
                    ))
                })?;
                Eval::Threshold { col, no_max: *no_max, yes_min: *yes_min }
            }
            LabelingFunction::Rule(desc) => {
                let set = RuleSetDesc { rules: vec![desc.clone()] }.build();
                Eval::Rule { set, positive: desc.polarity == RulePolarity::Positive }
            }
        });
    }
    let mut votes = Vec::with_capacity(pairs.len());
    for (i, pair) in pairs.iter().enumerate() {
        let (Some(u), Some(s)) = (umetrics.row(pair.left), usda.row(pair.right)) else {
            return Err(CoreError::Pipeline(format!(
                "candidate pair ({}, {}) out of range",
                pair.left, pair.right
            )));
        };
        let row: Vec<i8> = evals
            .iter()
            .map(|e| match e {
                Eval::Threshold { col, no_max, yes_min } => {
                    let v = x[i][*col];
                    if v.is_nan() {
                        0
                    } else if v >= *yes_min {
                        1
                    } else if v <= *no_max {
                        -1
                    } else {
                        0
                    }
                }
                Eval::Rule { set, positive: true } => {
                    i8::from(set.any_positive_fires(u, s))
                }
                Eval::Rule { set, positive: false } => {
                    if set.any_negative_fires(u, s) {
                        -1
                    } else {
                        0
                    }
                }
            })
            .collect();
        votes.push(row);
    }
    Ok(LfMatrix { names: lfs.iter().map(|lf| lf.name().to_string()).collect(), votes })
}

/// The majority-vote label model: per pair, the fraction of non-abstain
/// votes that say MATCH (`0.5` when every LF abstains or the vote ties).
pub fn majority_vote(matrix: &LfMatrix) -> Vec<f64> {
    matrix
        .votes
        .iter()
        .map(|row| {
            let pos = row.iter().filter(|&&v| v > 0).count();
            let neg = row.iter().filter(|&&v| v < 0).count();
            if pos + neg == 0 {
                0.5
            } else {
                pos as f64 / (pos + neg) as f64
            }
        })
        .collect()
}

/// Golden-ratio (Weyl) per-LF jitter stream — the same derivation the
/// forest uses for per-tree seeds — scaled down to a symmetry-breaking
/// perturbation of the initial accuracies.
fn init_jitter(seed: u64, lf: usize) -> f64 {
    let h = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lf as u64 + 1);
    (h % 1000) as f64 / 1e5 // [0, 0.01)
}

/// The seeded generative label model: one accuracy per LF, a class prior,
/// fit by EM. Deterministic in `(matrix, seed)` — the seed only perturbs
/// the initial accuracies so identical LFs don't start exactly symmetric.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerativeModel {
    /// Learned per-LF accuracy (probability the LF's non-abstain vote
    /// agrees with the latent label), clamped to `[0.05, 0.95]`.
    pub accuracies: Vec<f64>,
    /// Learned match prior.
    pub prior: f64,
    /// EM iterations actually run before convergence (or the cap).
    pub iterations: usize,
}

impl GenerativeModel {
    /// Posterior match probability per pair under the fitted model:
    /// `P(y=1 | votes) ∝ prior · Π_j P(vote_j | y=1)`, abstains excluded.
    pub fn posteriors(&self, matrix: &LfMatrix) -> Vec<f64> {
        matrix
            .votes
            .iter()
            .map(|row| {
                let mut log_odds = (self.prior / (1.0 - self.prior)).ln();
                for (j, &v) in row.iter().enumerate() {
                    if v == 0 {
                        continue;
                    }
                    let a = self.accuracies[j];
                    let w = (a / (1.0 - a)).ln();
                    log_odds += if v > 0 { w } else { -w };
                }
                1.0 / (1.0 + (-log_odds).exp())
            })
            .collect()
    }
}

/// Fits the generative model by EM: the E-step computes per-pair match
/// posteriors under the current accuracies, the M-step re-estimates each
/// LF's accuracy as its posterior-weighted agreement rate (with add-one
/// smoothing) and the prior as the mean posterior. Stops at `max_iters` or
/// when no accuracy moves by more than `1e-12`.
pub fn fit_generative(matrix: &LfMatrix, seed: u64, max_iters: usize) -> GenerativeModel {
    let n_lfs = matrix.n_lfs();
    let mut model = GenerativeModel {
        accuracies: (0..n_lfs).map(|j| 0.7 + init_jitter(seed, j)).collect(),
        prior: 0.3,
        iterations: 0,
    };
    if matrix.votes.is_empty() || n_lfs == 0 {
        return model;
    }
    for it in 0..max_iters {
        let w = model.posteriors(matrix); // E-step
        // M-step: accuracy_j = smoothed posterior-weighted agreement.
        let mut next = Vec::with_capacity(n_lfs);
        for j in 0..n_lfs {
            let mut agree = 0.0f64;
            let mut covered = 0.0f64;
            for (row, &wi) in matrix.votes.iter().zip(&w) {
                let v = row[j];
                if v == 0 {
                    continue;
                }
                covered += 1.0;
                agree += if v > 0 { wi } else { 1.0 - wi };
            }
            next.push(((agree + 1.0) / (covered + 2.0)).clamp(0.05, 0.95));
        }
        let prior =
            (w.iter().sum::<f64>() / w.len() as f64).clamp(0.05, 0.95);
        let delta = next
            .iter()
            .zip(&model.accuracies)
            .map(|(a, b)| (a - b).abs())
            .fold((prior - model.prior).abs(), f64::max);
        model.accuracies = next;
        model.prior = prior;
        model.iterations = it + 1;
        if delta < 1e-12 {
            break;
        }
    }
    model
}

/// Configuration of a zero-oracle weak-supervision run.
#[derive(Debug, Clone)]
pub struct WeakConfig {
    /// The labeling functions.
    pub lfs: Vec<LabelingFunction>,
    /// Posterior at or below this trains as a non-match.
    pub no_max: f64,
    /// Posterior at or above this trains as a match.
    pub yes_min: f64,
    /// EM iteration cap for the generative model.
    pub em_iters: usize,
    /// Committee members for the end matcher.
    pub members: usize,
    /// Seed for the label model's init jitter and the committee fit.
    pub seed: u64,
}

impl WeakConfig {
    /// The standard LF set with the usual band and a 7-member committee.
    pub fn standard(seed: u64) -> WeakConfig {
        WeakConfig {
            lfs: standard_lfs(),
            no_max: 0.3,
            yes_min: 0.7,
            em_iters: 25,
            members: 7,
            seed,
        }
    }
}

/// What a weak-supervision run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WeakOutcome {
    /// Labeling functions applied.
    pub n_lfs: usize,
    /// Fraction of candidates with at least one non-abstain vote.
    pub coverage: f64,
    /// Candidates with conflicting MATCH / NO-MATCH votes.
    pub conflicts: usize,
    /// Training rows kept after dropping the uncertain posterior band.
    pub kept: usize,
    /// Oracle labels consumed — always 0; the field exists so reports and
    /// JSON artifacts state the claim explicitly.
    pub oracle_labels: usize,
    /// Learned per-LF accuracies, in LF order.
    pub lf_accuracies: Vec<(String, f64)>,
    /// EM iterations the generative fit ran.
    pub em_iterations: usize,
    /// F1 of raw majority vote over the candidates vs truth.
    pub f1_majority: f64,
    /// F1 of the generative label model's posteriors (thresholded at 0.5).
    pub f1_label_model: f64,
    /// F1 of the committee trained on the probabilistic labels.
    pub f1: f64,
    /// Precision interval of the trained committee.
    pub precision: Interval,
    /// Recall interval of the trained committee.
    pub recall: Interval,
}

/// Runs weak supervision end to end — LF votes, label models, committee
/// training on probabilistic labels — with **zero** oracle queries; ground
/// truth is touched only to *score* the result.
pub fn run_weak(
    umetrics: &Table,
    usda: &Table,
    candidates: &CandidateSet,
    truth: &GroundTruth,
    cfg: &WeakConfig,
) -> Result<WeakOutcome, CoreError> {
    let all_pairs: Vec<Pair> = candidates.to_vec();
    let features = auto_features(
        umetrics,
        usda,
        &FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive(),
    );
    let x_all = extract_vectors(&features, umetrics, usda, &all_pairs)?;
    let truth_flags: Vec<bool> = all_pairs
        .iter()
        .map(|p| {
            truth.is_match(
                &em_core::labeling::award_of(umetrics, p.left),
                &em_core::labeling::accession_of(usda, p.right),
            )
        })
        .collect();

    let matrix = apply_lfs(&cfg.lfs, umetrics, usda, &all_pairs, &features, &x_all)?;
    let majority = majority_vote(&matrix);
    let model = fit_generative(&matrix, cfg.seed, cfg.em_iters);
    let posteriors = model.posteriors(&matrix);

    let maj_pred: Vec<bool> = majority.iter().map(|&p| p > 0.5).collect();
    let (f1_majority, _, _) = score_predictions(&maj_pred, &truth_flags);
    let lm_pred: Vec<bool> = posteriors.iter().map(|&p| p > 0.5).collect();
    let (f1_label_model, _, _) = score_predictions(&lm_pred, &truth_flags);

    // Probabilistic labels → training set (the uncertain band drops out)
    // → committee, exactly as a hand-labeled training set would flow.
    let (mut data, kept_idx) = dataset_from_probabilistic(
        features.names(),
        &x_all,
        &posteriors,
        cfg.no_max,
        cfg.yes_min,
    )?;
    if data.n_positive() == 0 || data.n_positive() == data.len() {
        return Err(CoreError::Pipeline(format!(
            "labeling functions produced a single-class training set \
             ({} of {} rows positive); add or loosen LFs",
            data.n_positive(),
            data.len()
        )));
    }
    let imputer = impute_mean(&mut data);
    let learner = CommitteeLearner {
        n_members: cfg.members,
        seed: cfg.seed,
        stratified: true,
        ..CommitteeLearner::default()
    };
    let committee = learner.fit(&data)?;
    let predicted = committee_predictions(&(committee, imputer), &x_all);
    let (f1, precision, recall) = score_predictions(&predicted, &truth_flags);

    Ok(WeakOutcome {
        n_lfs: matrix.n_lfs(),
        coverage: matrix.coverage(),
        conflicts: matrix.conflicts(),
        kept: kept_idx.len(),
        oracle_labels: 0,
        lf_accuracies: matrix
            .names
            .iter()
            .cloned()
            .zip(model.accuracies.iter().copied())
            .collect(),
        em_iterations: model.iterations,
        f1_majority,
        f1_label_model,
        f1,
        precision,
        recall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(votes: Vec<Vec<i8>>) -> LfMatrix {
        let n = votes.first().map(|r| r.len()).unwrap_or(0);
        LfMatrix { names: (0..n).map(|j| format!("lf{j}")).collect(), votes }
    }

    #[test]
    fn majority_vote_handles_ties_and_abstains() {
        let m = matrix(vec![
            vec![1, 1, 0],   // 2-0 → 1.0
            vec![1, -1, 0],  // tie → 0.5
            vec![0, 0, 0],   // all abstain → 0.5
            vec![-1, -1, 1], // 1-2 → 1/3
        ]);
        let p = majority_vote(&m);
        assert_eq!(p, vec![1.0, 0.5, 0.5, 1.0 / 3.0]);
        assert_eq!(m.conflicts(), 2);
        assert!((m.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn generative_model_upweights_the_accurate_lfs() {
        // LFs 0 and 1 vote the (latent) truth on every pair; LF 2 is a
        // coin that disagrees with them half the time. The consensus of
        // the two consistent LFs identifies the coin, and the learned
        // weights let the posterior recover the truth even where the coin
        // dissents.
        let truth: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let votes: Vec<Vec<i8>> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let v = if t { 1 } else { -1 };
                let coin = if i % 2 == 0 { v } else { -v };
                vec![v, v, coin]
            })
            .collect();
        let m = matrix(votes);
        let g = fit_generative(&m, 7, 50);
        assert!(
            g.accuracies[0] > g.accuracies[2] + 0.1,
            "consistent LFs must out-score the coin: {:?}",
            g.accuracies
        );
        // The posteriors recover the latent truth.
        let post = g.posteriors(&m);
        for (p, &t) in post.iter().zip(&truth) {
            assert_eq!(*p > 0.5, t, "posterior {p} disagrees with latent label {t}");
        }
    }

    #[test]
    fn generative_fit_is_deterministic_in_seed() {
        let votes: Vec<Vec<i8>> =
            (0..30).map(|i| vec![if i % 2 == 0 { 1 } else { -1 }, 1, -1]).collect();
        let m = matrix(votes);
        let a = fit_generative(&m, 42, 25);
        let b = fit_generative(&m, 42, 25);
        assert_eq!(a, b, "same seed must reproduce the fit bit for bit");
        for (x, y) in a.accuracies.iter().zip(&b.accuracies) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let c = fit_generative(&m, 43, 25);
        assert_eq!(a.accuracies.len(), c.accuracies.len());
    }

    #[test]
    fn lf_names_and_constructors() {
        let lfs = standard_lfs();
        assert_eq!(lfs.len(), 6);
        assert_eq!(lfs[0].name(), "lf:M1");
        assert!(matches!(
            &lfs[0],
            LabelingFunction::Rule(d)
                if d.polarity == RulePolarity::Positive && d.kind == RuleKeyKind::Suffix
        ));
        assert!(matches!(
            &lfs[2],
            LabelingFunction::Rule(d) if d.polarity == RulePolarity::Negative
        ));
        assert!(matches!(&lfs[4], LabelingFunction::Threshold { .. }));
        let attr = LabelingFunction::attr_equivalence("eq", "A", "B");
        assert!(matches!(
            &attr,
            LabelingFunction::Rule(d)
                if d.kind == RuleKeyKind::Attr && d.polarity == RulePolarity::Positive
        ));
    }
}
