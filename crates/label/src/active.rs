//! The active-learning loop: seed batch → committee fit → query-by-committee
//! selection → oracle query under retry/backoff → refit, with per-round
//! checkpoints.
//!
//! Selection ranks the unlabeled pool by **vote entropy** (descending — the
//! committee splits hardest) breaking ties by **margin** (ascending — the
//! mean probability sits closest to the 0.5 boundary) and finally by pair
//! order, so the queried batch is a pure function of the committee state.
//! The same harness with [`Strategy::Random`] is the uniform-sampling
//! baseline every label-efficiency curve is plotted against.
//!
//! Every round checkpoints its cumulative labeled set, budget ledger, and
//! curve point through [`Checkpoint`]'s bit-exact float round-trip; a run
//! that crashes mid-loop resumes from the last completed round and produces
//! the same remaining rounds bit for bit (pinned by the crate's integration
//! tests at 1, 2, and 4 threads).

use em_blocking::{CandidateSet, Pair};
use em_core::checkpoint::Checkpoint;
use em_core::labeling::{accession_of, award_of, sample_unlabeled, LabeledSet};
use em_core::pipeline::al_stage_name;
use em_core::{CoreError, RetryPolicy};
use em_datagen::{FlakyOracle, GroundTruth, LabelBudget, PairView};
use em_estimate::{estimate_accuracy, Interval, Label, SampleItem, Z95};
use em_features::{auto_features, extract_vectors, FeatureOptions, FeatureSet};
use em_ml::dataset::{impute_mean, Dataset, Imputer};
use em_ml::{CommitteeLearner, CommitteeModel};
use em_parallel::Executor;
use em_table::Table;
use std::collections::HashMap;
use std::path::Path;

/// Feature rows per parallel work item for pool scoring and evaluation.
const EVAL_GRAIN: usize = 64;

/// The acceptance bound the label-efficiency experiment is judged against:
/// active learning must reach the random baseline's final F1 spending at
/// most this fraction of the random arm's label budget.
pub const AL_TARGET_FRACTION: f64 = 0.5;

/// The checkpoint stage holding the config fingerprint guard.
const CONFIG_STAGE: &str = "al_config";

/// How the next batch is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Query-by-committee: vote entropy, then margin, then pair order.
    Committee,
    /// Uniform random sampling — the baseline arm of the curve.
    Random,
}

impl Strategy {
    /// Stable tag used in checkpoints and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            Strategy::Committee => "committee",
            Strategy::Random => "random",
        }
    }
}

/// Configuration of one active-learning run.
#[derive(Debug, Clone)]
pub struct ActiveConfig {
    /// Batch-selection strategy.
    pub strategy: Strategy,
    /// Pairs in the round-0 seed batch (always sampled uniformly — the
    /// committee does not exist yet).
    pub seed_batch: usize,
    /// Pairs queried per subsequent round.
    pub batch_size: usize,
    /// Total rounds, including the seed round.
    pub rounds: usize,
    /// Committee members (odd counts avoid exact vote ties).
    pub members: usize,
    /// Seed for sampling and committee fits.
    pub seed: u64,
    /// Retry policy for flaky-oracle queries; exhausted retries degrade the
    /// pair to `Unsure`, exactly as the batch pipeline does.
    pub retry: RetryPolicy,
    /// Test hook: return [`CoreError::InjectedCrash`] after checkpointing
    /// this round. Excluded from the config fingerprint (it does not change
    /// any computed value), so the crashed run can be resumed by a config
    /// with the hook cleared.
    pub crash_after_round: Option<usize>,
}

impl ActiveConfig {
    /// The label-efficiency experiment defaults: a 16-pair seed batch, ten
    /// 16-pair rounds (160 labels total — roughly half the case study's
    /// budget), a 15-member stratified committee, and the standard retry
    /// policy.
    pub fn new(strategy: Strategy, seed: u64) -> ActiveConfig {
        ActiveConfig {
            strategy,
            seed_batch: 16,
            batch_size: 16,
            rounds: 10,
            members: 15,
            seed,
            retry: RetryPolicy::default(),
            crash_after_round: None,
        }
    }

    /// The config guard written next to the round checkpoints: resuming
    /// with any different value is refused rather than silently mixing two
    /// experiments. The crash hook is deliberately excluded.
    fn fingerprint(&self) -> String {
        format!(
            "strategy={};seed_batch={};batch_size={};rounds={};members={};seed={};max_retries={}",
            self.strategy.tag(),
            self.seed_batch,
            self.batch_size,
            self.rounds,
            self.members,
            self.seed,
            self.retry.max_retries,
        )
    }
}

/// One point of the label-efficiency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveRound {
    /// Round index (0 = seed batch).
    pub round: usize,
    /// Pairs queried this round.
    pub queried: usize,
    /// Cumulative labeled pairs after this round.
    pub labels_total: usize,
    /// F1 of the current committee over the full candidate set vs truth.
    pub f1: f64,
    /// Precision interval ([`Z95`]) of the committee over the candidates.
    pub precision: Interval,
    /// Recall interval of the committee over the candidates.
    pub recall: Interval,
    /// Cumulative oracle queries (ledger snapshot).
    pub queries: u64,
    /// Cumulative faulted attempts retried.
    pub retries: u64,
    /// Cumulative pairs degraded to `Unsure` after exhausted retries.
    pub degraded: u64,
    /// Cumulative distinct pairs charged to the label budget.
    pub distinct: usize,
}

/// What a full active-learning run produced.
#[derive(Debug, Clone)]
pub struct ActiveOutcome {
    /// The curve, one row per round.
    pub rounds: Vec<ActiveRound>,
    /// Every label acquired.
    pub labeled: LabeledSet,
    /// The label-budget ledger.
    pub budget: LabelBudget,
    /// Rounds restored from checkpoint rather than recomputed.
    pub resumed_rounds: usize,
}

impl ActiveOutcome {
    /// Cumulative distinct labels at the first round whose F1 reaches
    /// `target`, or `None` when the curve never gets there.
    pub fn labels_to_reach(&self, target: f64) -> Option<usize> {
        self.rounds.iter().find(|r| r.f1 >= target).map(|r| r.distinct)
    }

    /// The final round's F1 (0.0 for an empty curve).
    pub fn final_f1(&self) -> f64 {
        self.rounds.last().map(|r| r.f1).unwrap_or(0.0)
    }
}

fn label_tag(label: Label) -> &'static str {
    match label {
        Label::Yes => "yes",
        Label::No => "no",
        Label::Unsure => "unsure",
    }
}

fn label_from_tag(tag: &str) -> Result<Label, CoreError> {
    match tag {
        "yes" => Ok(Label::Yes),
        "no" => Ok(Label::No),
        "unsure" => Ok(Label::Unsure),
        other => Err(CoreError::Checkpoint(format!("unknown label tag {other:?}"))),
    }
}

/// The committee fit on the current labeled set: training rows are the
/// Yes/No labels (Unsure drops out, as in the batch pipeline), imputed
/// in place; `None` until both classes are present.
fn fit_committee(
    features: &FeatureSet,
    x_all: &[Vec<f64>],
    index: &HashMap<Pair, usize>,
    labeled: &LabeledSet,
    cfg: &ActiveConfig,
) -> Result<Option<(CommitteeModel, Imputer)>, CoreError> {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for lp in labeled.iter() {
        let Some(as_bool) = lp.label.as_bool() else { continue };
        let Some(&i) = index.get(&lp.pair) else {
            return Err(CoreError::Pipeline(format!("labeled pair {:?} not a candidate", lp.pair)));
        };
        x.push(x_all[i].clone());
        y.push(as_bool);
    }
    let n_pos = y.iter().filter(|&&b| b).count();
    if n_pos == 0 || n_pos == y.len() {
        return Ok(None); // single-class: nothing to fit yet
    }
    let mut data = Dataset::new(features.names(), x, y).map_err(CoreError::Ml)?;
    let imputer = impute_mean(&mut data);
    let learner = CommitteeLearner {
        n_members: cfg.members,
        seed: cfg.seed,
        stratified: true,
        ..CommitteeLearner::default()
    };
    let model = learner.fit(&data).map_err(CoreError::Ml)?;
    Ok(Some((model, imputer)))
}

/// The committee's match/non-match verdict for every row of `x_all`
/// (imputed with the training-time imputer), bit-identical at any thread
/// count.
pub(crate) fn committee_predictions(
    model: &(CommitteeModel, Imputer),
    x_all: &[Vec<f64>],
) -> Vec<bool> {
    let (m, imputer) = model;
    let mut x = x_all.to_vec();
    imputer.transform(&mut x);
    Executor::current().map_slice(&x, EVAL_GRAIN, |row| m.mean_proba(row) > 0.5)
}

/// Scores a prediction vector against ground truth over the full candidate
/// set: the F1 point estimate plus [`Z95`] precision/recall intervals.
pub(crate) fn score_predictions(
    predicted: &[bool],
    truth_flags: &[bool],
) -> (f64, Interval, Interval) {
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    let mut sample = Vec::with_capacity(predicted.len());
    for (&p, &t) in predicted.iter().zip(truth_flags) {
        match (p, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
        sample.push(SampleItem { predicted: p, label: if t { Label::Yes } else { Label::No } });
    }
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 1.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    let est = estimate_accuracy(&sample, Z95);
    (f1, est.precision, est.recall)
}

/// Scores the committee over the full candidate set against ground truth.
fn evaluate(
    model: Option<&(CommitteeModel, Imputer)>,
    x_all: &[Vec<f64>],
    truth_flags: &[bool],
) -> (f64, Interval, Interval) {
    let predicted = match model {
        Some(m) => committee_predictions(m, x_all),
        None => vec![false; x_all.len()],
    };
    score_predictions(&predicted, truth_flags)
}

/// Saves round `r`'s cumulative state: the curve point, the labeled set so
/// far, and the budget ledger, all in bit-exact text form.
fn save_round(
    dir: &Path,
    r: usize,
    row: &ActiveRound,
    labeled: &LabeledSet,
    budget: &LabelBudget,
) -> Result<(), CoreError> {
    let mut cp = Checkpoint::new();
    cp.put_display("round", r);
    cp.put_display("queried", row.queried);
    cp.put_display("labels_total", row.labels_total);
    cp.put_f64("f1", row.f1);
    cp.put_f64("precision_lo", row.precision.lo);
    cp.put_f64("precision_hi", row.precision.hi);
    cp.put_f64("recall_lo", row.recall.lo);
    cp.put_f64("recall_hi", row.recall.hi);
    cp.put_display("queries", budget.queries());
    cp.put_display("retries", budget.retries());
    cp.put_display("degraded", budget.degraded());
    let labeled_records: Vec<Vec<String>> = labeled
        .iter()
        .map(|lp| {
            vec![lp.pair.left.to_string(), lp.pair.right.to_string(), label_tag(lp.label).into()]
        })
        .collect();
    cp.put_records("labeled", &labeled_records);
    let charged: Vec<Vec<String>> =
        budget.distinct_iter().map(|(a, b)| vec![a.clone(), b.clone()]).collect();
    cp.put_records("charged", &charged);
    cp.save(dir, &al_stage_name(r))
}

/// Restores round `r` from its checkpoint: the curve point, the cumulative
/// labeled set, and the budget ledger.
fn load_round(cp: &Checkpoint, r: usize) -> Result<(ActiveRound, LabeledSet, LabelBudget), CoreError> {
    let stored: usize = cp.get_parsed("round")?;
    if stored != r {
        return Err(CoreError::Checkpoint(format!(
            "checkpoint stage {} holds round {stored}",
            al_stage_name(r)
        )));
    }
    let mut labeled = LabeledSet::new();
    for rec in cp.get_records("labeled")? {
        let [left, right, tag] = rec.as_slice() else {
            return Err(CoreError::Checkpoint(format!("malformed labeled record {rec:?}")));
        };
        let pair = Pair::new(
            left.parse().map_err(|_| CoreError::Checkpoint(format!("bad row index {left:?}")))?,
            right.parse().map_err(|_| CoreError::Checkpoint(format!("bad row index {right:?}")))?,
        );
        labeled.insert(pair, label_from_tag(tag)?);
    }
    let mut charged = Vec::new();
    for rec in cp.get_records("charged")? {
        let [award, accession] = rec.as_slice() else {
            return Err(CoreError::Checkpoint(format!("malformed charged record {rec:?}")));
        };
        charged.push((award.clone(), accession.clone()));
    }
    let budget = LabelBudget::restore(
        cp.get_parsed("queries")?,
        cp.get_parsed("retries")?,
        cp.get_parsed("degraded")?,
        charged,
    );
    let row = ActiveRound {
        round: r,
        queried: cp.get_parsed("queried")?,
        labels_total: cp.get_parsed("labels_total")?,
        f1: cp.get_parsed("f1")?,
        precision: Interval::new(cp.get_parsed("precision_lo")?, cp.get_parsed("precision_hi")?),
        recall: Interval::new(cp.get_parsed("recall_lo")?, cp.get_parsed("recall_hi")?),
        queries: budget.queries(),
        retries: budget.retries(),
        degraded: budget.degraded(),
        distinct: budget.distinct_pairs(),
    };
    Ok((row, labeled, budget))
}

/// Runs the active-learning loop end to end.
///
/// With `ckpt_dir` set, each completed round writes a checkpoint and a rerun
/// resumes from the last completed round — the resumed curve, labeled set,
/// and budget are bit-identical to the uninterrupted run's. A directory
/// holding a different config fingerprint is refused.
pub fn run_active(
    umetrics: &Table,
    usda: &Table,
    candidates: &CandidateSet,
    oracle: &FlakyOracle<'_>,
    truth: &GroundTruth,
    cfg: &ActiveConfig,
    ckpt_dir: Option<&Path>,
) -> Result<ActiveOutcome, CoreError> {
    // Config guard: a checkpoint directory is bound to one experiment.
    if let Some(dir) = ckpt_dir {
        match Checkpoint::load(dir, CONFIG_STAGE)? {
            Some(stored) if stored.get("fingerprint")? != cfg.fingerprint() => {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint dir {dir:?} holds a different active-learning configuration"
                )));
            }
            Some(_) => {}
            None => {
                let mut cp = Checkpoint::new();
                cp.put("fingerprint", cfg.fingerprint());
                cp.save(dir, CONFIG_STAGE)?;
            }
        }
    }

    // One extraction for the whole experiment: every round's training
    // matrix, pool scores, and evaluation all read from this matrix.
    let all_pairs: Vec<Pair> = candidates.to_vec();
    let features = auto_features(
        umetrics,
        usda,
        &FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive(),
    );
    let x_all = extract_vectors(&features, umetrics, usda, &all_pairs)?;
    let index: HashMap<Pair, usize> =
        all_pairs.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let keys: Vec<(String, String)> = all_pairs
        .iter()
        .map(|p| (award_of(umetrics, p.left), accession_of(usda, p.right)))
        .collect();
    let truth_flags: Vec<bool> = keys.iter().map(|(a, c)| truth.is_match(a, c)).collect();

    let mut labeled = LabeledSet::new();
    let mut budget = LabelBudget::new();
    let mut rounds: Vec<ActiveRound> = Vec::with_capacity(cfg.rounds);
    let mut resumed_rounds = 0usize;
    // The committee carried across rounds: fit at the end of round r, used
    // to select round r+1's batch. Dropped on resume and lazily refit — the
    // fit is a pure function of (labeled set, seed), so the refit equals
    // the model the uninterrupted run carried.
    let mut model: Option<(CommitteeModel, Imputer)> = None;

    for r in 0..cfg.rounds {
        if let Some(dir) = ckpt_dir {
            if let Some(cp) = Checkpoint::load(dir, &al_stage_name(r))? {
                let (row, l, b) = load_round(&cp, r)?;
                rounds.push(row);
                labeled = l;
                budget = b;
                model = None;
                resumed_rounds += 1;
                continue;
            }
        }

        // Select this round's batch.
        let batch: Vec<Pair> = if r == 0 {
            sample_unlabeled(candidates, &labeled, cfg.seed_batch, cfg.seed)
        } else {
            if model.is_none() {
                model = fit_committee(&features, &x_all, &index, &labeled, cfg)?;
            }
            match (cfg.strategy, model.as_ref()) {
                (Strategy::Committee, Some((m, imputer))) => {
                    let pool: Vec<usize> = (0..all_pairs.len())
                        .filter(|&i| !labeled.contains(&all_pairs[i]))
                        .collect();
                    let mut x_pool: Vec<Vec<f64>> =
                        pool.iter().map(|&i| x_all[i].clone()).collect();
                    imputer.transform(&mut x_pool);
                    let scores = m.score_pool(&x_pool);
                    let mut ranked: Vec<usize> = (0..pool.len()).collect();
                    ranked.sort_by(|&a, &b| {
                        scores[b]
                            .vote_entropy
                            .partial_cmp(&scores[a].vote_entropy)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| {
                                scores[a]
                                    .margin
                                    .partial_cmp(&scores[b].margin)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .then_with(|| all_pairs[pool[a]].cmp(&all_pairs[pool[b]]))
                    });
                    let mut batch: Vec<Pair> = ranked
                        .iter()
                        .take(cfg.batch_size)
                        .map(|&k| all_pairs[pool[k]])
                        .collect();
                    batch.sort(); // deterministic presentation order
                    batch
                }
                // Random arm, or no committee yet (single-class labels so
                // far): uniform sampling keeps the loop moving.
                _ => sample_unlabeled(candidates, &labeled, cfg.batch_size, cfg.seed + r as u64),
            }
        };

        // Query the oracle for the batch under the retry policy; the ledger
        // charges each distinct pair once no matter how flaky the oracle.
        let views: Vec<PairView<'_>> = batch
            .iter()
            .map(|p| {
                let i = index[p];
                let u = umetrics.row(p.left);
                let s = usda.row(p.right);
                PairView {
                    award_number: &keys[i].0,
                    accession: &keys[i].1,
                    left_title: u.and_then(|r| r.str("AwardTitle")).unwrap_or(""),
                    right_title: s.and_then(|r| r.str("AwardTitle")).unwrap_or(""),
                    right_award_number: s.and_then(|r| r.str("AwardNumber")),
                    right_project_number: s.and_then(|r| r.str("ProjectNumber")),
                }
            })
            .collect();
        let labels = oracle.label_batch(&views, r == 0, cfg.retry.max_retries, &mut budget);
        for (pair, (_first, settled)) in batch.iter().zip(&labels) {
            labeled.insert(*pair, *settled);
        }

        // Refit on everything labeled so far and score the curve point.
        model = fit_committee(&features, &x_all, &index, &labeled, cfg)?;
        let (f1, precision, recall) = evaluate(model.as_ref(), &x_all, &truth_flags);
        let row = ActiveRound {
            round: r,
            queried: batch.len(),
            labels_total: labeled.len(),
            f1,
            precision,
            recall,
            queries: budget.queries(),
            retries: budget.retries(),
            degraded: budget.degraded(),
            distinct: budget.distinct_pairs(),
        };
        rounds.push(row.clone());

        if let Some(dir) = ckpt_dir {
            save_round(dir, r, &row, &labeled, &budget)?;
            if cfg.crash_after_round == Some(r) {
                return Err(CoreError::InjectedCrash(al_stage_name(r)));
            }
        }
    }

    Ok(ActiveOutcome { rounds, labeled, budget, resumed_rounds })
}
