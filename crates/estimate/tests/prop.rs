//! Property-based tests for the accuracy estimator.

use em_estimate::{estimate_accuracy, Interval, Label, SampleItem, Z95};
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = Vec<SampleItem>> {
    proptest::collection::vec(
        (any::<bool>(), 0u8..3).prop_map(|(predicted, l)| SampleItem {
            predicted,
            label: match l {
                0 => Label::Yes,
                1 => Label::No,
                _ => Label::Unsure,
            },
        }),
        0..200,
    )
}

proptest! {
    /// Intervals are always well-formed, inside [0, 1], and contain the
    /// point estimate computed directly from the sample.
    #[test]
    fn intervals_contain_point_estimates(items in sample()) {
        let est = estimate_accuracy(&items, Z95);
        for iv in [est.precision, est.recall] {
            prop_assert!(iv.lo >= 0.0 && iv.hi <= 1.0 && iv.lo <= iv.hi);
        }
        let decided: Vec<&SampleItem> =
            items.iter().filter(|i| i.label != Label::Unsure).collect();
        let predicted: Vec<&&SampleItem> = decided.iter().filter(|i| i.predicted).collect();
        if !predicted.is_empty() {
            let p = predicted.iter().filter(|i| i.label == Label::Yes).count() as f64
                / predicted.len() as f64;
            prop_assert!(est.precision.contains(p), "{p} not in {:?}", est.precision);
        }
        let actual: Vec<&&SampleItem> =
            decided.iter().filter(|i| i.label == Label::Yes).collect();
        if !actual.is_empty() {
            let r = actual.iter().filter(|i| i.predicted).count() as f64 / actual.len() as f64;
            prop_assert!(est.recall.contains(r), "{r} not in {:?}", est.recall);
        }
    }

    /// Bookkeeping identities: used + unsure = total; predicted and actual
    /// counts never exceed used.
    #[test]
    fn counts_are_consistent(items in sample()) {
        let est = estimate_accuracy(&items, Z95);
        prop_assert_eq!(est.n_used + est.n_unsure, items.len());
        prop_assert!(est.n_predicted <= est.n_used);
        prop_assert!(est.n_actual <= est.n_used);
    }

    /// A larger critical value never narrows an interval.
    #[test]
    fn z_monotonicity(items in sample(), z1 in 0.5f64..2.0, z2 in 0.0f64..1.5) {
        let (lo_z, hi_z) = if z1 <= z1 + z2 { (z1, z1 + z2) } else { (z1 + z2, z1) };
        let narrow = estimate_accuracy(&items, lo_z);
        let wide = estimate_accuracy(&items, hi_z);
        prop_assert!(wide.precision.width() >= narrow.precision.width() - 1e-12);
        prop_assert!(wide.recall.width() >= narrow.recall.width() - 1e-12);
    }

    /// Duplicating the sample (same rates, double n) never widens the
    /// unclamped interval; with clamping it never widens either, because
    /// the half-width shrinks by 1/sqrt(2).
    #[test]
    fn doubling_never_widens(items in sample()) {
        prop_assume!(!items.is_empty());
        let once = estimate_accuracy(&items, Z95);
        let mut doubled = items.clone();
        doubled.extend(items.iter().copied());
        let twice = estimate_accuracy(&doubled, Z95);
        prop_assert!(twice.precision.width() <= once.precision.width() + 1e-12);
        prop_assert!(twice.recall.width() <= once.recall.width() + 1e-12);
    }

    /// Interval::new normalizes any pair of endpoints.
    #[test]
    fn interval_normalization(a in -2.0f64..3.0, b in -2.0f64..3.0) {
        let iv = Interval::new(a, b);
        prop_assert!(iv.lo <= iv.hi);
        prop_assert!((0.0..=1.0).contains(&iv.lo));
        prop_assert!((0.0..=1.0).contains(&iv.hi));
        prop_assert!(iv.contains(iv.mid()));
    }
}
