//! # em-estimate — labels and Corleone-style accuracy estimation
//!
//! Section 11 of the case study estimates matcher precision and recall
//! without exhaustive ground truth, following the Corleone approach \[13\]:
//! take a random sample of the consolidated candidate set, have the domain
//! experts label it (`Yes` / `No` / `Unsure`), and estimate
//!
//! - **precision** from the labeled sample pairs the matcher *predicted*
//!   (what fraction are labeled `Yes`), and
//! - **recall** from the labeled sample pairs that *are* matches (what
//!   fraction the matcher predicted),
//!
//! each with a normal-approximation binomial confidence interval. `Unsure`
//! labels are ignored (paper, footnote 10: "The estimation procedure ignores
//! the 'Unsure' pairs"). Growing the sample (200 → 400 labels in the paper)
//! shrinks the intervals — [`AccuracyEstimate`] preserves that behaviour.

#![warn(missing_docs)]

use std::fmt;

/// A domain-expert label for a record pair.
///
/// `Unsure` exists because "even domain experts had troubles labeling
/// certain pairs, due to dirty, incomplete, or cryptic data" (Section 8);
/// unsure pairs are excluded from training and evaluation alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The pair is a match.
    Yes,
    /// The pair is a non-match.
    No,
    /// The expert cannot tell.
    Unsure,
}

impl Label {
    /// `Some(true/false)` for Yes/No, `None` for Unsure.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Label::Yes => Some(true),
            Label::No => Some(false),
            Label::Unsure => None,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Label::Yes => "Yes",
            Label::No => "No",
            Label::Unsure => "Unsure",
        };
        write!(f, "{s}")
    }
}

/// A closed interval, clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Builds an interval, clamping to `[0, 1]` and ordering the endpoints.
    pub fn new(lo: f64, hi: f64) -> Interval {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        Interval { lo: lo.min(hi), hi: lo.max(hi) }
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint (the point estimate).
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// True when `v` lies inside (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}%, {:.1}%)", 100.0 * self.lo, 100.0 * self.hi)
    }
}

/// One labeled sample pair, as the estimator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleItem {
    /// Whether the matcher under evaluation predicted the pair a match.
    pub predicted: bool,
    /// The expert label.
    pub label: Label,
}

/// Estimated precision and recall with confidence intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyEstimate {
    /// Precision interval.
    pub precision: Interval,
    /// Recall interval.
    pub recall: Interval,
    /// Labeled (non-unsure) sample pairs used.
    pub n_used: usize,
    /// Sample pairs the matcher predicted positive.
    pub n_predicted: usize,
    /// Sample pairs labeled `Yes`.
    pub n_actual: usize,
    /// Sample pairs ignored as `Unsure`.
    pub n_unsure: usize,
}

/// Normal-approximation binomial interval for `successes / trials` at
/// critical value `z`. Zero trials yields the vacuous full interval —
/// nothing was observed, so nothing is constrained.
fn binomial_interval(successes: usize, trials: usize, z: f64) -> Interval {
    if trials == 0 {
        return Interval::new(0.0, 1.0);
    }
    let p = successes as f64 / trials as f64;
    let half = z * (p * (1.0 - p) / trials as f64).sqrt();
    Interval::new(p - half, p + half)
}

/// Estimates accuracy from a labeled random sample of the candidate set,
/// at the given critical value (`z = 1.96` → 95% confidence).
pub fn estimate_accuracy(sample: &[SampleItem], z: f64) -> AccuracyEstimate {
    let mut n_unsure = 0usize;
    let mut n_predicted = 0usize;
    let mut tp_of_predicted = 0usize;
    let mut n_actual = 0usize;
    let mut tp_of_actual = 0usize;
    for item in sample {
        let Some(actual) = item.label.as_bool() else {
            n_unsure += 1;
            continue;
        };
        if item.predicted {
            n_predicted += 1;
            if actual {
                tp_of_predicted += 1;
            }
        }
        if actual {
            n_actual += 1;
            if item.predicted {
                tp_of_actual += 1;
            }
        }
    }
    AccuracyEstimate {
        precision: binomial_interval(tp_of_predicted, n_predicted, z),
        recall: binomial_interval(tp_of_actual, n_actual, z),
        n_used: sample.len() - n_unsure,
        n_predicted,
        n_actual,
        n_unsure,
    }
}

/// The conventional 95% critical value.
pub const Z95: f64 = 1.96;

#[cfg(test)]
mod tests {
    use super::*;

    fn item(predicted: bool, label: Label) -> SampleItem {
        SampleItem { predicted, label }
    }

    #[test]
    fn perfect_matcher_gets_degenerate_intervals() {
        // Every prediction right, every match predicted → both intervals
        // collapse to (1, 1), like the IRIS precision of (100%, 100%).
        let sample: Vec<SampleItem> = (0..50)
            .map(|i| item(i % 5 == 0, if i % 5 == 0 { Label::Yes } else { Label::No }))
            .collect();
        let est = estimate_accuracy(&sample, Z95);
        assert_eq!(est.precision, Interval::new(1.0, 1.0));
        assert_eq!(est.recall, Interval::new(1.0, 1.0));
    }

    #[test]
    fn known_fractions() {
        // 10 predicted, 8 true → p̂ = 0.8; 16 actual, 8 caught → r̂ = 0.5.
        let mut sample = Vec::new();
        for i in 0..10 {
            sample.push(item(true, if i < 8 { Label::Yes } else { Label::No }));
        }
        for _ in 0..8 {
            sample.push(item(false, Label::Yes));
        }
        for _ in 0..20 {
            sample.push(item(false, Label::No));
        }
        let est = estimate_accuracy(&sample, Z95);
        // The upper precision bound clamps at 1.0 (only 10 trials), so test
        // the unclamped lower bound and containment instead of the midpoint.
        assert!((est.precision.lo - (0.8 - 1.96 * (0.8f64 * 0.2 / 10.0).sqrt())).abs() < 1e-9);
        assert!((est.recall.mid() - 0.5).abs() < 1e-9);
        assert!(est.precision.contains(0.8));
        assert!(est.recall.contains(0.5));
        assert_eq!(est.n_predicted, 10);
        assert_eq!(est.n_actual, 16);
    }

    #[test]
    fn unsure_labels_ignored() {
        let sample = vec![
            item(true, Label::Yes),
            item(true, Label::Unsure),
            item(false, Label::Unsure),
            item(false, Label::No),
        ];
        let est = estimate_accuracy(&sample, Z95);
        assert_eq!(est.n_unsure, 2);
        assert_eq!(est.n_used, 2);
        assert_eq!(est.precision, Interval::new(1.0, 1.0));
    }

    #[test]
    fn more_labels_shrink_intervals() {
        // Same underlying rates at n and 2n: interval must shrink — the
        // paper's 200 → 400 label step.
        let make = |n: usize| -> Vec<SampleItem> {
            (0..n)
                .map(|i| {
                    let is_match = i % 4 == 0;
                    let predicted = (is_match && i % 8 != 4) || i % 16 == 1;
                    item(predicted, if is_match { Label::Yes } else { Label::No })
                })
                .collect()
        };
        let small = estimate_accuracy(&make(200), Z95);
        let large = estimate_accuracy(&make(400), Z95);
        assert!(large.precision.width() < small.precision.width());
        assert!(large.recall.width() < small.recall.width());
    }

    #[test]
    fn empty_sample_is_vacuous() {
        let est = estimate_accuracy(&[], Z95);
        assert_eq!(est.precision, Interval::new(0.0, 1.0));
        assert_eq!(est.recall, Interval::new(0.0, 1.0));
    }

    /// Label-efficiency curves chart an interval at every point, including
    /// the degenerate early rounds; no degenerate input may ever produce a
    /// NaN endpoint (a NaN would serialize as `null` and silently poison
    /// the JSON artifact downstream).
    fn assert_finite(est: &AccuracyEstimate) {
        for i in [est.precision, est.recall] {
            assert!(i.lo.is_finite() && i.hi.is_finite(), "non-finite interval {i:?}");
            assert!((0.0..=1.0).contains(&i.lo) && (0.0..=1.0).contains(&i.hi));
            assert!(i.lo <= i.hi);
        }
    }

    #[test]
    fn degenerate_empty_sample_stays_finite() {
        let est = estimate_accuracy(&[], Z95);
        assert_finite(&est);
        assert_eq!((est.n_used, est.n_predicted, est.n_actual, est.n_unsure), (0, 0, 0, 0));
    }

    #[test]
    fn degenerate_all_positive_stays_finite() {
        // Every pair predicted and labeled Yes: p̂ = r̂ = 1 with zero
        // variance — the interval collapses to (1, 1), never NaN.
        let sample: Vec<SampleItem> = (0..10).map(|_| item(true, Label::Yes)).collect();
        let est = estimate_accuracy(&sample, Z95);
        assert_finite(&est);
        assert_eq!(est.precision, Interval::new(1.0, 1.0));
        assert_eq!(est.recall, Interval::new(1.0, 1.0));
    }

    #[test]
    fn degenerate_single_item_stays_finite() {
        for (predicted, label) in [
            (true, Label::Yes),
            (true, Label::No),
            (false, Label::Yes),
            (false, Label::No),
            (false, Label::Unsure),
        ] {
            let est = estimate_accuracy(&[item(predicted, label)], Z95);
            assert_finite(&est);
        }
        // n=1 with the only item predicted-and-wrong: precision (0, 0),
        // recall vacuous (no actual matches observed).
        let est = estimate_accuracy(&[item(true, Label::No)], Z95);
        assert_eq!(est.precision, Interval::new(0.0, 0.0));
        assert_eq!(est.recall, Interval::new(0.0, 1.0));
    }

    #[test]
    fn degenerate_all_unsure_stays_finite() {
        let sample: Vec<SampleItem> = (0..5).map(|_| item(true, Label::Unsure)).collect();
        let est = estimate_accuracy(&sample, Z95);
        assert_finite(&est);
        assert_eq!(est.n_unsure, 5);
        assert_eq!(est.n_used, 0);
        assert_eq!(est.precision, Interval::new(0.0, 1.0));
    }

    #[test]
    fn interval_clamps_and_orders() {
        let i = Interval::new(1.2, -0.5);
        assert_eq!(i, Interval { lo: 0.0, hi: 1.0 });
        assert!((Interval::new(0.9, 0.95).width() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn label_as_bool() {
        assert_eq!(Label::Yes.as_bool(), Some(true));
        assert_eq!(Label::No.as_bool(), Some(false));
        assert_eq!(Label::Unsure.as_bool(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Label::Unsure.to_string(), "Unsure");
        assert_eq!(Interval::new(0.752, 0.803).to_string(), "(75.2%, 80.3%)");
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let sample: Vec<SampleItem> = (0..100)
            .map(|i| item(i % 3 == 0, if i % 4 == 0 { Label::Yes } else { Label::No }))
            .collect();
        let narrow = estimate_accuracy(&sample, 1.0);
        let wide = estimate_accuracy(&sample, 2.58);
        assert!(wide.precision.width() >= narrow.precision.width());
        assert!(wide.recall.width() >= narrow.recall.width());
    }
}
