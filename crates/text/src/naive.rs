//! Textbook reference implementations of the sequence kernels.
//!
//! These are the original per-cell dynamic programs [`crate::seq`] shipped
//! before the similarity-kernel engine (bit-parallel Levenshtein + scratch
//! arena) replaced them on the hot path. They are kept — unoptimized and
//! allocation-happy — as the ground truth the fast kernels are
//! property-tested against: for every input, `seq::f == naive::f` must hold
//! bit for bit. Nothing outside tests and benches should call them.

/// Levenshtein edit distance, classic two-row DP. `O(|a|·|b|)` time.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein similarity: `1 - dist / max_len` (1.0 for two empty strings).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Restricted Damerau-Levenshtein distance, full-matrix DP.
#[allow(clippy::needless_range_loop)] // index DP reads more clearly than zipped iterators
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for j in 0..=m {
        d[0][j] = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1).min(d[i][j - 1] + 1).min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Jaro similarity, allocating match and flag buffers per call.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> =
        b.iter().zip(&b_used).filter(|(_, used)| **used).map(|(c, _)| *c).collect();
    let transpositions =
        matches_a.iter().zip(&matches_b).filter(|(x, y)| x != y).count() / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity (`p = 0.1`, prefix capped at 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Needleman-Wunsch global alignment score, two-row DP.
pub fn needleman_wunsch(a: &str, b: &str, gap: f64) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<f64> = (0..=b.len()).map(|j| -(j as f64) * gap).collect();
    let mut cur = vec![0.0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = -((i + 1) as f64) * gap;
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { 1.0 } else { 0.0 };
            cur[j + 1] = diag.max(prev[j + 1] - gap).max(cur[j] - gap);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Needleman-Wunsch similarity (gap 1, clamped at 0).
pub fn needleman_wunsch_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    (needleman_wunsch(a, b, 1.0).max(0.0)) / max_len as f64
}

/// Smith-Waterman local alignment score, two-row DP.
pub fn smith_waterman(a: &str, b: &str, gap: f64) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev = vec![0.0f64; b.len() + 1];
    let mut cur = vec![0.0f64; b.len() + 1];
    let mut best = 0.0f64;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { 1.0 } else { 0.0 };
            cur[j + 1] = diag.max(prev[j + 1] - gap).max(cur[j] - gap).max(0.0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Normalized Smith-Waterman similarity (gap 1, shorter-length denominator).
pub fn smith_waterman_sim(a: &str, b: &str) -> f64 {
    let min_len = a.chars().count().min(b.chars().count());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() { 1.0 } else { 0.0 };
    }
    smith_waterman(a, b, 1.0) / min_len as f64
}

/// Affine-gap global alignment score (Gotoh), fresh rows per iteration.
#[allow(clippy::needless_range_loop)] // index DP reads more clearly than zipped iterators
pub fn affine_gap(a: &str, b: &str, open: f64, extend: f64) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let neg = f64::NEG_INFINITY;
    let n = a.len();
    let m = b.len();
    // m_[j]: best score ending in a match/mismatch; x: gap in b; y: gap in a.
    let mut m_prev = vec![neg; m + 1];
    let mut x_prev = vec![neg; m + 1];
    let mut y_prev = vec![neg; m + 1];
    m_prev[0] = 0.0;
    for j in 1..=m {
        y_prev[j] = -open - (j - 1) as f64 * extend;
    }
    for i in 1..=n {
        let mut m_cur = vec![neg; m + 1];
        let mut x_cur = vec![neg; m + 1];
        let mut y_cur = vec![neg; m + 1];
        x_cur[0] = -open - (i - 1) as f64 * extend;
        for j in 1..=m {
            let score = if a[i - 1] == b[j - 1] { 1.0 } else { 0.0 };
            m_cur[j] = score + m_prev[j - 1].max(x_prev[j - 1]).max(y_prev[j - 1]);
            x_cur[j] = (m_prev[j] - open).max(x_prev[j] - extend);
            y_cur[j] = (m_cur[j - 1] - open).max(y_cur[j - 1] - extend);
        }
        m_prev = m_cur;
        x_prev = x_cur;
        y_prev = y_cur;
    }
    m_prev[m].max(x_prev[m]).max(y_prev[m])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert!((jaro("MARTHA", "MARHTA") - 0.9444444444444445).abs() < 1e-12);
        assert!((needleman_wunsch("ab", "axb", 1.0) - 1.0).abs() < 1e-12);
        assert!((smith_waterman("xxhelloyy", "zzhellozz", 1.0) - 5.0).abs() < 1e-12);
        assert!((affine_gap("abcd", "ad", 1.0, 0.5) - 0.5).abs() < 1e-12);
    }
}
