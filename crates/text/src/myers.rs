//! Myers bit-parallel Levenshtein distance.
//!
//! The classic per-cell DP costs `O(n·m)` with a data-dependent branch per
//! cell. Myers' algorithm (G. Myers, *A fast bit-vector algorithm for
//! approximate string matching based on dynamic programming*, JACM 1999)
//! encodes a whole DP column's vertical deltas in two machine words (`VP`,
//! `VN`) and advances one text character with ~15 word operations — a
//! 64-cells-per-step data-parallel evaluation of the exact same recurrence,
//! so the distance is **exact**, not approximate.
//!
//! For patterns longer than 64 chars the block-based extension (Hyyrö 2003,
//! as implemented in tools like Edlib) chains `⌈m/64⌉` blocks per column,
//! propagating a horizontal delta `hin ∈ {-1, 0, +1}` bottom-up.
//!
//! Two distance-preserving short-cuts run first: the common prefix and
//! suffix are trimmed (they contribute no edits), and once either trimmed
//! side is empty the length difference *is* the distance — the degenerate
//! band where no alignment choice remains. All working memory (pattern
//! masks, block vectors) lives in the caller's [`KernelScratch`].

use crate::scratch::KernelScratch;

const WORD: usize = 64;

/// Exact Levenshtein distance between two char slices.
///
/// Equivalent to [`crate::naive::levenshtein`] on every input (pinned by
/// the property suite in `tests/prop.rs`); allocation-free after scratch
/// warm-up.
pub fn distance(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> usize {
    // Trim the common prefix and suffix: neither affects the distance.
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a.iter().rev().zip(b.iter().rev()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[..a.len() - suffix], &b[..b.len() - suffix]);
    // The shorter side is the pattern (fewer blocks); distance is symmetric.
    let (pat, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pat.is_empty() {
        // Length difference bounds — and here equals — the distance.
        return text.len();
    }
    if pat.len() <= WORD {
        single_block(scratch, pat, text)
    } else {
        multi_block(scratch, pat, text)
    }
}

/// Builds the pattern-mask table: for each char `c`, a bit per pattern
/// position holding `c`. ASCII chars index a dense table; anything else
/// goes through a small slot map. Layout: `masks[c_slot * words + w]`.
fn build_peq(s: &mut KernelScratch, pat: &[char], words: usize) {
    s.peq_ascii.clear();
    s.peq_ascii.resize(128 * words, 0);
    s.peq_other.clear();
    s.peq_other_bits.clear();
    for (i, &c) in pat.iter().enumerate() {
        let (w, bit) = (i / WORD, 1u64 << (i % WORD));
        let u = c as usize;
        if u < 128 {
            s.peq_ascii[u * words + w] |= bit;
        } else {
            let next = s.peq_other.len();
            let slot = *s.peq_other.entry(c).or_insert(next);
            if slot == next {
                s.peq_other_bits.resize((next + 1) * words, 0);
            }
            s.peq_other_bits[slot * words + w] |= bit;
        }
    }
}

/// Pattern mask of `c` for block `w`.
fn peq(s: &KernelScratch, c: char, words: usize, w: usize) -> u64 {
    let u = c as usize;
    if u < 128 {
        s.peq_ascii[u * words + w]
    } else {
        s.peq_other.get(&c).map_or(0, |&slot| s.peq_other_bits[slot * words + w])
    }
}

/// Patterns up to 64 chars: the original single-word recurrence. The top
/// boundary (row 0 of the DP matrix) always increases rightward, realized
/// by the `| 1` carried into `Ph` each column.
fn single_block(s: &mut KernelScratch, pat: &[char], text: &[char]) -> usize {
    build_peq(s, pat, 1);
    let m = pat.len();
    let high = 1u64 << (m - 1);
    let mut vp = !0u64;
    let mut vn = 0u64;
    let mut score = m;
    for &c in text {
        let eq = peq(s, c, 1, 0);
        let xv = eq | vn;
        let xh = (((eq & vp).wrapping_add(vp)) ^ vp) | eq;
        let mut ph = vn | !(xh | vp);
        let mut mh = vp & xh;
        if ph & high != 0 {
            score += 1;
        } else if mh & high != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        vp = mh | !(xv | ph);
        vn = ph & xv;
    }
    score
}

/// Patterns over 64 chars: `⌈m/64⌉` chained blocks per text char. Each
/// block consumes the horizontal delta `hin` coming out of the block below
/// and emits its own at its top row; the last block's delta (read at the
/// pattern's final bit, not bit 63, when the block is partial) tracks the
/// bottom-row score. Bits above the pattern end never feed back into live
/// bits — word-add carries only propagate upward — so the partial block
/// needs no masking.
fn multi_block(s: &mut KernelScratch, pat: &[char], text: &[char]) -> usize {
    let m = pat.len();
    let words = m.div_ceil(WORD);
    build_peq(s, pat, words);
    s.vp.clear();
    s.vp.resize(words, !0u64);
    s.vn.clear();
    s.vn.resize(words, 0);
    let last = words - 1;
    let last_high = 1u64 << ((m - 1) % WORD);
    let mut score = m as i64;
    for &c in text {
        let mut hin: i32 = 1; // row 0 grows rightward
        for w in 0..words {
            let eq = peq(s, c, words, w);
            let vp = s.vp[w];
            let vn = s.vn[w];
            let xv = eq | vn;
            let eq2 = eq | u64::from(hin < 0);
            let xh = (((eq2 & vp).wrapping_add(vp)) ^ vp) | eq2;
            let mut ph = vn | !(xh | vp);
            let mut mh = vp & xh;
            let high = if w == last { last_high } else { 1u64 << (WORD - 1) };
            let hout = if ph & high != 0 {
                1
            } else if mh & high != 0 {
                -1
            } else {
                0
            };
            ph <<= 1;
            mh <<= 1;
            match hin.cmp(&0) {
                std::cmp::Ordering::Less => mh |= 1,
                std::cmp::Ordering::Greater => ph |= 1,
                std::cmp::Ordering::Equal => {}
            }
            s.vp[w] = mh | !(xv | ph);
            s.vn[w] = ph & xv;
            hin = hout;
        }
        score += i64::from(hin);
    }
    score as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn dist(a: &str, b: &str) -> usize {
        let mut s = KernelScratch::new();
        let ca: Vec<char> = a.chars().collect();
        let cb: Vec<char> = b.chars().collect();
        distance(&mut s, &ca, &cb)
    }

    #[test]
    fn known_values() {
        assert_eq!(dist("kitten", "sitting"), 3);
        assert_eq!(dist("", "abc"), 3);
        assert_eq!(dist("abc", ""), 3);
        assert_eq!(dist("abc", "abc"), 0);
        assert_eq!(dist("flaw", "lawn"), 2);
        assert_eq!(dist("", ""), 0);
    }

    #[test]
    fn unicode_pattern_chars() {
        assert_eq!(dist("café", "cafe"), 1);
        assert_eq!(dist("naïve", "naive"), 1);
        assert_eq!(dist("日本語の見出し", "日本語の題名"), 3);
    }

    #[test]
    fn crosses_the_block_boundary() {
        // 63-, 64-, 65-, 130-char patterns around the 64-bit word edge.
        for n in [63usize, 64, 65, 100, 130] {
            let a: String = "ab".chars().cycle().take(n).collect();
            let mut b = a.clone();
            b.replace_range(0..1, "x"); // one substitution at the head
            assert_eq!(dist(&a, &b), naive::levenshtein(&a, &b), "n={n}");
            let b2: String = a.chars().rev().collect();
            assert_eq!(dist(&a, &b2), naive::levenshtein(&a, &b2), "rev n={n}");
        }
    }

    #[test]
    fn long_asymmetric_inputs() {
        let a = "the quick brown fox jumps over the lazy dog and keeps running far beyond the fence line";
        let b = "a quick brown fox jumped over a lazy dog and kept running well beyond that old fence";
        assert_eq!(dist(a, b), naive::levenshtein(a, b));
        assert_eq!(dist(b, a), naive::levenshtein(b, a));
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let mut s = KernelScratch::new();
        let pairs = [("grant title", "grant titel"), ("", "x"), ("lévénshtein", "levenshtein")];
        for (a, b) in pairs {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            let first = distance(&mut s, &ca, &cb);
            let second = distance(&mut s, &ca, &cb);
            assert_eq!(first, second);
            assert_eq!(first, naive::levenshtein(a, b));
        }
    }
}
