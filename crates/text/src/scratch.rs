//! Thread-local scratch arena for the allocation-free sequence kernels.
//!
//! Every [`crate::seq`] kernel needs working memory — DP rows, Jaro match
//! flags, Myers pattern masks, decoded `char` buffers. Allocating those per
//! call dominates the cost of comparing short strings (a feature-extraction
//! run makes millions of kernel calls on ~40-char titles). A
//! [`KernelScratch`] owns one reusable copy of every buffer; kernels
//! `clear()`/`resize()` what they use, so after the first call at a given
//! string length the hot path touches the allocator not at all.
//!
//! Lifetime rules:
//!
//! - A scratch is **not** a cache: no kernel result may depend on what a
//!   previous call left behind. Every kernel fully re-initializes the
//!   buffers it reads.
//! - Buffers only grow; dropping the scratch frees everything. One scratch
//!   sized by the longest string seen is the steady state.
//! - `KernelScratch` is `Send` but not `Sync`: share one per thread, never
//!   across threads. [`with_scratch`] hands out the calling thread's
//!   instance; re-entrant use (a kernel invoked from inside another
//!   kernel's closure, e.g. a Monge-Elkan inner measure) falls back to a
//!   fresh arena instead of panicking.

use std::cell::RefCell;
use std::collections::HashMap;

/// Reusable working memory for the sequence kernels. See the module docs
/// for lifetime rules; construct one per thread (or use [`with_scratch`]).
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Decoded-char buffers backing the `&str` kernel wrappers.
    chars_a: Vec<char>,
    chars_b: Vec<char>,
    /// Integer DP rows (Damerau-Levenshtein keeps three alive).
    pub(crate) urow0: Vec<usize>,
    pub(crate) urow1: Vec<usize>,
    pub(crate) urow2: Vec<usize>,
    /// Float DP rows (Needleman-Wunsch/Smith-Waterman use two, the affine
    /// gap kernel all six: previous + current of the M/X/Y matrices).
    pub(crate) frow0: Vec<f64>,
    pub(crate) frow1: Vec<f64>,
    pub(crate) frow2: Vec<f64>,
    pub(crate) frow3: Vec<f64>,
    pub(crate) frow4: Vec<f64>,
    pub(crate) frow5: Vec<f64>,
    /// Jaro match flags (one per right-hand char) and matched-char buffer.
    pub(crate) flags: Vec<bool>,
    pub(crate) matches: Vec<char>,
    /// Myers pattern-mask table for ASCII chars: `peq_ascii[c * words + w]`.
    pub(crate) peq_ascii: Vec<u64>,
    /// Slot assignment and masks for non-ASCII pattern chars.
    pub(crate) peq_other: HashMap<char, usize>,
    pub(crate) peq_other_bits: Vec<u64>,
    /// Multi-block Myers vertical delta vectors.
    pub(crate) vp: Vec<u64>,
    pub(crate) vn: Vec<u64>,
}

impl KernelScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> KernelScratch {
        KernelScratch::default()
    }

    /// Moves the two decode buffers out, filled with the chars of `a`/`b`.
    /// Taking them (rather than borrowing) lets the caller keep using the
    /// rest of the scratch mutably; pair with [`KernelScratch::return_decoded`].
    pub(crate) fn take_decoded(&mut self, a: &str, b: &str) -> (Vec<char>, Vec<char>) {
        let mut ca = std::mem::take(&mut self.chars_a);
        let mut cb = std::mem::take(&mut self.chars_b);
        ca.clear();
        ca.extend(a.chars());
        cb.clear();
        cb.extend(b.chars());
        (ca, cb)
    }

    /// Returns buffers taken by [`KernelScratch::take_decoded`] so their
    /// capacity is reused by the next call.
    pub(crate) fn return_decoded(&mut self, ca: Vec<char>, cb: Vec<char>) {
        self.chars_a = ca;
        self.chars_b = cb;
    }
}

thread_local! {
    static SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::new());
}

/// Runs `f` with the calling thread's [`KernelScratch`].
///
/// Re-entrant calls (e.g. a composite measure whose inner function is a
/// kernel wrapper) get a fresh, short-lived arena rather than a panic.
pub fn with_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut KernelScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_round_trip_reuses_capacity() {
        let mut s = KernelScratch::new();
        let (ca, cb) = s.take_decoded("abc", "de");
        assert_eq!(ca, vec!['a', 'b', 'c']);
        assert_eq!(cb, vec!['d', 'e']);
        s.return_decoded(ca, cb);
        let (ca2, _cb2) = s.take_decoded("x", "yz");
        assert_eq!(ca2, vec!['x']);
        assert!(ca2.capacity() >= 3, "capacity must be retained");
    }

    #[test]
    fn with_scratch_is_reentrant() {
        let out = with_scratch(|outer| {
            let (ca, cb) = outer.take_decoded("aa", "ab");
            let inner = with_scratch(|s| crate::seq::levenshtein_chars(s, &ca, &cb));
            outer.return_decoded(ca, cb);
            inner
        });
        assert_eq!(out, 1);
    }
}
