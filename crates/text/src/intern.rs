//! Token interning: tokenize once, compare integers forever.
//!
//! The blockers and set-similarity features spend most of their time
//! re-tokenizing the same strings into owned `Vec<String>` and comparing
//! heap-allocated tokens. This module fixes both costs:
//!
//! - [`Interner`] maps each distinct token string to a dense `u32` id.
//! - [`TokenCache`] memoizes *raw text → sorted distinct token ids* behind
//!   a mutex, so each distinct cell value is normalized + tokenized +
//!   interned exactly once per cache, no matter how many pairs touch it.
//! - [`TokenCorpus`] tokenizes a whole column up front into per-row id
//!   lists (the "tokenize each column once" layout blockers consume).
//! - The `*_sorted` set measures compute overlap/Jaccard/… on sorted id
//!   slices with a linear merge — no hash sets, no string comparisons.
//!
//! Id assignment depends on insertion order, so ids are only meaningful
//! within one `Interner`/`TokenCache`; all set measures are invariant to
//! the id assignment, which keeps results independent of interning order.

use crate::fasthash::FastMap;
use crate::normalize::Normalizer;
use crate::tokenize::{AlphanumericTokenizer, Tokenizer};
use std::sync::{Arc, Mutex};

/// Maps token strings to dense `u32` ids. Keyed with [`FastMap`]: token
/// text is pipeline-internal, and the interner is hashed once per token
/// occurrence during bulk tokenization.
#[derive(Debug, Default)]
pub struct Interner {
    map: FastMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Returns the id of `tok`, assigning the next free id on first sight.
    pub fn intern(&mut self, tok: &str) -> u32 {
        if let Some(&id) = self.map.get(tok) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.map.insert(tok.to_string(), id);
        self.strings.push(tok.to_string());
        id
    }

    /// The id of `tok` if it has been interned.
    pub fn get(&self, tok: &str) -> Option<u32> {
        self.map.get(tok).copied()
    }

    /// The string for an id assigned by this interner.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Sorted distinct token ids of one text value. Cheap to clone and share.
pub type TokenIds = Arc<[u32]>;

/// Default cap on the text→ids memo of a [`TokenCache`]. When the memo
/// reaches the cap it is cleared wholesale (an *epoch*), so long-running
/// streams of distinct texts hold RSS flat instead of growing without
/// bound. Interner ids are **never** evicted — they must stay stable for
/// every [`TokenCorpus`] already built against the cache — and re-tokenized
/// texts re-intern to the same ids, so eviction never changes results.
pub const TEXT_MEMO_CAP: usize = 1 << 20;

struct CacheInner {
    interner: Interner,
    memo: FastMap<String, TokenIds>,
    empty: TokenIds,
    memo_cap: usize,
    memo_epochs: u64,
}

/// Memoizing normalizer + word tokenizer + interner.
///
/// `token_ids` returns the **sorted distinct** token ids of a text value,
/// computing them at most once per distinct input string. Shareable across
/// blockers via `Arc` so one table column is tokenized once for the whole
/// blocking plan.
pub struct TokenCache {
    normalizer: Normalizer,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for TokenCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("TokenCache")
            .field("normalizer", &self.normalizer)
            .field("distinct_texts", &inner.memo.len())
            .field("distinct_tokens", &inner.interner.len())
            .finish()
    }
}

impl TokenCache {
    /// A cache applying `normalizer` before word tokenization, with the
    /// default [`TEXT_MEMO_CAP`] memo bound.
    pub fn new(normalizer: Normalizer) -> TokenCache {
        TokenCache::with_memo_cap(normalizer, TEXT_MEMO_CAP)
    }

    /// Like [`TokenCache::new`] with an explicit memo cap (tests exercise
    /// tiny caps to pin eviction behavior). A cap of 0 disables memoization
    /// entirely; interning is unaffected either way.
    pub fn with_memo_cap(normalizer: Normalizer, memo_cap: usize) -> TokenCache {
        TokenCache {
            normalizer,
            inner: Mutex::new(CacheInner {
                interner: Interner::new(),
                memo: FastMap::default(),
                empty: Arc::from(Vec::new()),
                memo_cap,
                memo_epochs: 0,
            }),
        }
    }

    /// A cache with the paper's blocking normalization.
    pub fn for_blocking() -> TokenCache {
        TokenCache::new(Normalizer::for_blocking())
    }

    /// Sorted distinct token ids for `text`; `None` and empty inputs map to
    /// the shared empty list.
    pub fn token_ids(&self, text: Option<&str>) -> TokenIds {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(text) = text else { return Arc::clone(&inner.empty) };
        if let Some(ids) = inner.memo.get(text) {
            return Arc::clone(ids);
        }
        let toks = AlphanumericTokenizer.tokenize(&self.normalizer.apply(text));
        let mut ids: Vec<u32> = toks.iter().map(|t| inner.interner.intern(t)).collect();
        ids.sort_unstable();
        ids.dedup();
        let ids: TokenIds = Arc::from(ids);
        if inner.memo_cap > 0 && inner.memo.len() >= inner.memo_cap {
            // Size-capped epoch eviction: drop the whole memo rather than
            // track per-entry recency. Ids are stable, so a re-miss just
            // recomputes the identical value.
            inner.memo.clear();
            inner.memo_epochs += 1;
        }
        if inner.memo_cap > 0 {
            inner.memo.insert(text.to_string(), Arc::clone(&ids));
        }
        ids
    }

    /// How many times the text memo hit its cap and was cleared.
    pub fn memo_epochs(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.memo_epochs
    }

    /// The token string behind an id (allocates; debugging/reporting only).
    pub fn resolve(&self, id: u32) -> Option<String> {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.interner.resolve(id).map(str::to_string)
    }

    /// Number of distinct tokens interned so far.
    pub fn n_tokens(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.interner.len()
    }

    /// Number of distinct texts memoized so far (cache hit-surface size).
    pub fn n_texts(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.memo.len()
    }
}

/// One table column tokenized up front: sorted distinct token ids per row,
/// all interned in a shared cache. This is the layout the blockers probe.
///
/// Storage is columnar: one flat `u32` id arena indexed by a row-offset
/// table, so a corpus of `n` rows and `m` total tokens costs exactly
/// `4(n + 1 + m)` bytes regardless of row-length skew — no per-row
/// allocation, no `Arc` headers, and row slices are contiguous in probe
/// order. At x256 scale (~490k award titles) this halves corpus memory
/// versus the earlier `Vec<Arc<[u32]>>` layout and keeps the set-similarity
/// join's sequential verification merges cache-friendly.
#[derive(Debug, Clone)]
pub struct TokenCorpus {
    /// Row `i` occupies `arena[starts[i] as usize..starts[i + 1] as usize]`.
    starts: Vec<u32>,
    arena: Vec<u32>,
    max_id: Option<u32>,
}

impl TokenCorpus {
    /// Tokenizes every row of a column (an iterator of optional cell texts)
    /// through `cache`, in row order — interning stays deterministic
    /// because this pass is sequential.
    ///
    /// This is the bulk path: the cache is locked **once** for the whole
    /// column, memoized texts are copied straight into the arena, and cache
    /// misses tokenize via the borrowing tokenizer into a reusable id
    /// buffer — no per-row `Arc`, token `String`, or memo-key allocation.
    /// Misses are *not* inserted into the memo (the corpus itself is the
    /// artifact); interner ids come out identical either way because the
    /// intern sequence is unchanged.
    pub fn from_column<'a, I>(cache: &TokenCache, column: I) -> TokenCorpus
    where
        I: IntoIterator<Item = Option<&'a str>>,
    {
        let mut inner = cache.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let inner = &mut *inner;
        let mut starts: Vec<u32> = vec![0];
        let mut arena: Vec<u32> = Vec::new();
        let mut row_ids: Vec<u32> = Vec::new();
        for text in column {
            if let Some(text) = text {
                if let Some(ids) = inner.memo.get(text) {
                    arena.extend_from_slice(ids);
                } else {
                    row_ids.clear();
                    let normalized = cache.normalizer.apply(text);
                    AlphanumericTokenizer.for_each_token(&normalized, |tok| {
                        row_ids.push(inner.interner.intern(tok));
                    });
                    row_ids.sort_unstable();
                    row_ids.dedup();
                    arena.extend_from_slice(&row_ids);
                }
            }
            starts.push(arena.len() as u32);
        }
        // Rows are sorted ascending, so the corpus-wide max is the max over
        // the arena — one O(total tokens) pass at build time.
        let max_id = arena.iter().copied().max();
        TokenCorpus { starts, arena, max_id }
    }

    /// Sorted distinct token ids of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.arena[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// True when the corpus has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total token occurrences across all rows (the arena length).
    pub fn n_tokens_total(&self) -> usize {
        self.arena.len()
    }

    /// Largest token id appearing in any row, if any — the bound dense
    /// inverted indexes are sized by.
    pub fn max_id(&self) -> Option<u32> {
        self.max_id
    }

    /// Iterates `(row_index, token_ids)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> {
        (0..self.len()).map(|i| (i, self.row(i)))
    }
}

/// `|A ∩ B|` of two sorted distinct id slices via linear merge.
pub fn overlap_size_sorted(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard from precomputed set cardinalities: `inter / (la + lb - inter)`
/// with the same degenerate conventions as [`jaccard_sorted`]. The serve-path
/// extractor scores candidates from `(|A∩B|, |A|, |B|)` counts without
/// materializing both id lists; delegating the sorted variant to this
/// function keeps the two paths bit-identical by construction.
pub fn jaccard_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let union = la + lb - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Overlap coefficient from precomputed set cardinalities, matching
/// [`overlap_coefficient_sorted`]'s degenerate conventions.
pub fn overlap_coefficient_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    inter as f64 / la.min(lb) as f64
}

/// Dice from precomputed set cardinalities, matching [`dice_sorted`].
pub fn dice_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let denom = la + lb;
    if denom == 0 {
        1.0
    } else {
        2.0 * inter as f64 / denom as f64
    }
}

/// Set cosine from precomputed set cardinalities, matching [`cosine_sorted`].
pub fn cosine_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    inter as f64 / ((la * lb) as f64).sqrt()
}

/// Jaccard `|A∩B| / |A∪B|` on sorted distinct id slices. Two empty inputs
/// are identical (`1.0`), matching [`crate::set::jaccard`].
pub fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    jaccard_counts(overlap_size_sorted(a, b), a.len(), b.len())
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)` on sorted distinct id slices,
/// matching [`crate::set::overlap_coefficient`]'s degenerate conventions.
pub fn overlap_coefficient_sorted(a: &[u32], b: &[u32]) -> f64 {
    overlap_coefficient_counts(overlap_size_sorted(a, b), a.len(), b.len())
}

/// Dice `2|A∩B| / (|A|+|B|)` on sorted distinct id slices.
pub fn dice_sorted(a: &[u32], b: &[u32]) -> f64 {
    dice_counts(overlap_size_sorted(a, b), a.len(), b.len())
}

/// Set cosine `|A∩B| / sqrt(|A|·|B|)` on sorted distinct id slices.
pub fn cosine_sorted(a: &[u32], b: &[u32]) -> f64 {
    cosine_counts(overlap_size_sorted(a, b), a.len(), b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn ids_of(cache: &TokenCache, s: &str) -> TokenIds {
        cache.token_ids(Some(s))
    }

    #[test]
    fn interner_round_trips() {
        let mut i = Interner::new();
        let a = i.intern("corn");
        let b = i.intern("fungicide");
        assert_ne!(a, b);
        assert_eq!(i.intern("corn"), a, "re-interning is idempotent");
        assert_eq!(i.resolve(a), Some("corn"));
        assert_eq!(i.get("fungicide"), Some(b));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn capped_memo_evicts_in_epochs_without_changing_ids() {
        let capped = TokenCache::with_memo_cap(crate::Normalizer::for_blocking(), 4);
        let unbounded = TokenCache::for_blocking();
        let texts: Vec<String> = (0..40).map(|i| format!("grant corn {i}")).collect();
        // Two interleaved passes so evicted entries get re-missed.
        for _ in 0..2 {
            for t in &texts {
                assert_eq!(
                    capped.token_ids(Some(t)).as_ref(),
                    unbounded.token_ids(Some(t)).as_ref(),
                    "eviction must never change token ids"
                );
            }
        }
        assert!(capped.memo_epochs() > 0, "tiny cap must have cycled epochs");
        assert!(capped.n_texts() <= 4, "memo stays within its cap");
        assert_eq!(capped.n_tokens(), unbounded.n_tokens(), "interner is never evicted");
        // Cap 0 disables memoization but still tokenizes correctly.
        let off = TokenCache::with_memo_cap(crate::Normalizer::for_blocking(), 0);
        let ids = off.token_ids(Some("Corn GRANT"));
        let words: Vec<String> = ids.iter().map(|&id| off.resolve(id).unwrap()).collect();
        assert_eq!(words, ["corn", "grant"]);
        assert_eq!(off.token_ids(Some("Corn GRANT")).as_ref(), ids.as_ref());
        assert_eq!(off.n_texts(), 0);
        assert_eq!(off.memo_epochs(), 0);
    }

    #[test]
    fn cache_memoizes_and_dedups() {
        let cache = TokenCache::for_blocking();
        let a = ids_of(&cache, "Corn corn CORN fungicide");
        assert_eq!(a.len(), 2, "distinct after lowercasing: {a:?}");
        let b = ids_of(&cache, "Corn corn CORN fungicide");
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
        assert!(cache.token_ids(None).is_empty());
    }

    #[test]
    fn ids_are_sorted() {
        let cache = TokenCache::for_blocking();
        // Interning order differs from sorted order here on purpose.
        ids_of(&cache, "zebra");
        let ids = ids_of(&cache, "zebra apple mango");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "{ids:?}");
    }

    #[test]
    fn corpus_tokenizes_each_row() {
        let cache = TokenCache::for_blocking();
        let col = [Some("Corn Fungicide"), None, Some("corn")];
        let corpus = TokenCorpus::from_column(&cache, col);
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.row(0).len(), 2);
        assert!(corpus.row(1).is_empty());
        assert_eq!(overlap_size_sorted(corpus.row(0), corpus.row(2)), 1);
        assert!(corpus.max_id().is_some());
    }

    #[test]
    fn sorted_measures_match_string_measures() {
        let cache = TokenCache::new(Normalizer::none());
        let pairs = [
            ("a b c", "b c d"),
            ("lab supplies", "lab supplies extra"),
            ("x", "x"),
            ("one two", "three four"),
        ];
        for (x, y) in pairs {
            let (ia, ib) = (ids_of(&cache, x), ids_of(&cache, y));
            let (ta, tb) = (toks(x), toks(y));
            assert_eq!(overlap_size_sorted(&ia, &ib), set::overlap_size(&ta, &tb), "({x},{y})");
            assert_eq!(jaccard_sorted(&ia, &ib), set::jaccard(&ta, &tb), "({x},{y})");
            assert_eq!(
                overlap_coefficient_sorted(&ia, &ib),
                set::overlap_coefficient(&ta, &tb),
                "({x},{y})"
            );
            assert_eq!(dice_sorted(&ia, &ib), set::dice(&ta, &tb), "({x},{y})");
            assert_eq!(cosine_sorted(&ia, &ib), set::cosine(&ta, &tb), "({x},{y})");
        }
    }

    #[test]
    fn degenerate_conventions_preserved() {
        let empty: &[u32] = &[];
        let one: &[u32] = &[1];
        assert_eq!(jaccard_sorted(empty, empty), 1.0);
        assert_eq!(jaccard_sorted(empty, one), 0.0);
        assert_eq!(overlap_coefficient_sorted(empty, empty), 1.0);
        assert_eq!(overlap_coefficient_sorted(empty, one), 0.0);
        assert_eq!(dice_sorted(empty, empty), 1.0);
        assert_eq!(cosine_sorted(one, empty), 0.0);
    }
}
