//! Phonetic encoding: American Soundex, the phonetic measure in the
//! py_stringmatching toolkit this crate mirrors. Useful for the paper's M3
//! hint ("matched by comparing the individuals involved"): person names
//! recorded by different clerks often differ in spelling but not in sound.

/// Encodes one word with American Soundex: the first letter followed by
/// three digits. Non-ASCII-alphabetic characters are skipped; an input with
/// no letters encodes to `None`.
///
/// Standard rules: adjacent same-coded letters collapse; `H`/`W` are
/// transparent between same-coded letters; vowels (and `Y`) separate codes.
pub fn soundex(word: &str) -> Option<String> {
    fn code(c: u8) -> u8 {
        match c {
            b'B' | b'F' | b'P' | b'V' => b'1',
            b'C' | b'G' | b'J' | b'K' | b'Q' | b'S' | b'X' | b'Z' => b'2',
            b'D' | b'T' => b'3',
            b'L' => b'4',
            b'M' | b'N' => b'5',
            b'R' => b'6',
            _ => 0, // vowels, H, W, Y
        }
    }
    let letters: Vec<u8> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase() as u8)
        .collect();
    let (&first, rest) = letters.split_first()?;
    let mut out = vec![first];
    let mut last_code = code(first);
    for &c in rest {
        let k = code(c);
        if k != 0 && k != last_code {
            out.push(k);
            if out.len() == 4 {
                break;
            }
        }
        // H and W do not reset the previous code; vowels and Y do.
        if !(c == b'H' || c == b'W') {
            last_code = k;
        }
    }
    while out.len() < 4 {
        out.push(b'0');
    }
    Some(String::from_utf8(out).expect("ASCII by construction"))
}

/// 0/1 similarity: do the two words share a Soundex code? Inputs with no
/// letters score 0 against everything (including each other — no phonetic
/// evidence either way).
pub fn soundex_sim(a: &str, b: &str) -> f64 {
    match (soundex(a), soundex(b)) {
        (Some(x), Some(y)) if x == y => 1.0,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        // The canonical National Archives examples.
        assert_eq!(soundex("Washington").as_deref(), Some("W252"));
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
    }

    #[test]
    fn double_letters_collapse() {
        assert_eq!(soundex("Gutierrez").as_deref(), Some("G362"));
        assert_eq!(soundex("Jackson").as_deref(), Some("J250"));
    }

    #[test]
    fn short_names_zero_padded() {
        assert_eq!(soundex("Lee").as_deref(), Some("L000"));
        assert_eq!(soundex("Wu").as_deref(), Some("W000"));
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        assert_eq!(soundex("o'brien"), soundex("OBrien"));
        assert_eq!(soundex("SMITH"), soundex("smith"));
    }

    #[test]
    fn empty_and_nonletter_inputs() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex_sim("", ""), 0.0);
    }

    #[test]
    fn sim_matches_homophones() {
        assert_eq!(soundex_sim("Smith", "Smyth"), 1.0);
        assert_eq!(soundex_sim("Robert", "Rupert"), 1.0);
        assert_eq!(soundex_sim("Smith", "Jones"), 0.0);
    }

    #[test]
    fn first_letter_preserved_even_when_vowel() {
        assert_eq!(soundex("Euler").as_deref(), Some("E460"));
        assert_eq!(soundex("Ellery").as_deref(), Some("E460"));
    }
}
