//! String normalization used before tokenization and blocking.
//!
//! Section 7 of the case study normalizes award titles by lower-casing and
//! removing special characters before overlap blocking — but Section 9
//! deliberately does *not* lowercase during pre-processing ("that often
//! resulted in a loss of information"), instead lowercasing only where
//! needed. [`Normalizer`] makes each choice explicit and composable so both
//! behaviours (and the A-2 ablation between them) are expressible.

/// A configurable string normalizer.
///
/// Steps are applied in a fixed order: lowercase → strip specials →
/// collapse whitespace → trim. Each step is independently switchable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Normalizer {
    /// ASCII-lowercase the input.
    pub lowercase: bool,
    /// Replace characters that are not alphanumeric or whitespace with a
    /// space (quotes, hashes, exclamation marks, braces, … — the list the
    /// paper removes before blocking).
    pub strip_specials: bool,
    /// Collapse runs of whitespace to a single space.
    pub collapse_whitespace: bool,
}

impl Normalizer {
    /// The paper's blocking normalization: lowercase + strip specials +
    /// collapse whitespace.
    pub fn for_blocking() -> Normalizer {
        Normalizer { lowercase: true, strip_specials: true, collapse_whitespace: true }
    }

    /// Identity (no-op) normalizer.
    pub fn none() -> Normalizer {
        Normalizer { lowercase: false, strip_specials: false, collapse_whitespace: false }
    }

    /// Lowercase only — the case-insensitive feature variant of Section 9.
    pub fn lowercase_only() -> Normalizer {
        Normalizer { lowercase: true, strip_specials: false, collapse_whitespace: false }
    }

    /// Applies the configured steps.
    pub fn apply(&self, s: &str) -> String {
        let mut out: String = if self.strip_specials {
            s.chars()
                .map(|c| if c.is_alphanumeric() || c.is_whitespace() { c } else { ' ' })
                .collect()
        } else {
            s.to_string()
        };
        if self.lowercase {
            // Allow-listed: normalization is the once-per-value pipeline
            // stage, not a per-pair hot path.
            #[allow(clippy::disallowed_methods)]
            {
                out = out.to_lowercase();
            }
        }
        if self.collapse_whitespace {
            let mut collapsed = String::with_capacity(out.len());
            let mut prev_space = false;
            for c in out.chars() {
                if c.is_whitespace() {
                    if !prev_space {
                        collapsed.push(' ');
                    }
                    prev_space = true;
                } else {
                    collapsed.push(c);
                    prev_space = false;
                }
            }
            out = collapsed;
        }
        out.trim().to_string()
    }
}

impl Default for Normalizer {
    fn default() -> Self {
        Normalizer::for_blocking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_normalization() {
        let n = Normalizer::for_blocking();
        assert_eq!(
            n.apply("  \"Swamp Dodder (Cuscuta gronovii)\"  Applied!  "),
            "swamp dodder cuscuta gronovii applied"
        );
    }

    #[test]
    fn none_is_identity() {
        let n = Normalizer::none();
        assert_eq!(n.apply("A  (b)!"), "A  (b)!");
    }

    #[test]
    fn lowercase_only_keeps_punctuation() {
        let n = Normalizer::lowercase_only();
        assert_eq!(n.apply("IPM-Based Corn"), "ipm-based corn");
    }

    #[test]
    fn collapse_handles_tabs_and_newlines() {
        let n = Normalizer { lowercase: false, strip_specials: false, collapse_whitespace: true };
        assert_eq!(n.apply("a\t\tb\n c"), "a b c");
    }

    #[test]
    fn unicode_alphanumerics_survive_strip() {
        let n = Normalizer::for_blocking();
        assert_eq!(n.apply("café #9"), "café 9");
    }
}
