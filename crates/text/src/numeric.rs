//! Numeric and date comparators used as non-string features (Section 9
//! footnote 7: "numeric features (e.g., absolute difference, exact match)").
//!
//! Comparators return `None` when either side is missing; the feature layer
//! maps `None` to a missing feature value to be imputed later.

/// Exact numeric equality as a 0/1 similarity.
pub fn exact(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    Some(f64::from(a? == b?))
}

/// Absolute difference `|a - b|` (a distance, not a similarity; the model
/// learns the direction).
pub fn abs_diff(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    Some((a? - b?).abs())
}

/// Relative difference `|a - b| / max(|a|, |b|)`, in `[0, 1]` for same-sign
/// inputs; `0` when both are zero.
pub fn rel_diff(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    let (a, b) = (a?, b?);
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        Some(0.0)
    } else {
        Some((a - b).abs() / denom)
    }
}

/// Relative similarity `1 - min(rel_diff, 1)`, in `[0, 1]`.
pub fn rel_sim(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    rel_diff(a, b).map(|d| 1.0 - d.min(1.0))
}

/// Absolute difference in whole years between two day numbers (see
/// `em_table::Date::day_number`) — the "transaction dates within a few
/// years" comparator from the Section 8 label fixes.
pub fn year_gap(day_a: Option<i64>, day_b: Option<i64>) -> Option<f64> {
    Some(((day_a? - day_b?).abs() as f64) / 365.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches() {
        assert_eq!(exact(Some(2.0), Some(2.0)), Some(1.0));
        assert_eq!(exact(Some(2.0), Some(3.0)), Some(0.0));
        assert_eq!(exact(None, Some(3.0)), None);
    }

    #[test]
    fn abs_diff_basic() {
        assert_eq!(abs_diff(Some(10.0), Some(4.0)), Some(6.0));
        assert_eq!(abs_diff(Some(4.0), Some(10.0)), Some(6.0));
        assert_eq!(abs_diff(Some(4.0), None), None);
    }

    #[test]
    fn rel_diff_bounds() {
        assert_eq!(rel_diff(Some(0.0), Some(0.0)), Some(0.0));
        assert_eq!(rel_diff(Some(5.0), Some(10.0)), Some(0.5));
        assert_eq!(rel_sim(Some(5.0), Some(10.0)), Some(0.5));
        assert_eq!(rel_sim(Some(7.0), Some(7.0)), Some(1.0));
    }

    #[test]
    fn year_gap_scales_days() {
        let gap = year_gap(Some(0), Some(731)).unwrap();
        assert!((gap - 2.0).abs() < 0.01);
        assert_eq!(year_gap(None, Some(1)), None);
    }
}
