//! Tokenizers: word-level and q-gram, the two shapes the case study uses
//! (word tokens for overlap blocking, 3-grams for Jaccard features).

use std::collections::HashSet;

/// Splits text into tokens.
///
/// Implementations are value types (cheap to copy) so feature generators can
/// embed them. Tokens are returned in order with duplicates preserved;
/// callers that need set semantics use [`token_set`].
pub trait Tokenizer {
    /// Tokenizes `s`. Empty inputs yield no tokens.
    fn tokenize(&self, s: &str) -> Vec<String>;

    /// A short stable name for reports and feature labels (e.g. `"ws"`,
    /// `"qgm_3"`).
    fn name(&self) -> String;
}

/// Whitespace tokenizer: splits on Unicode whitespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WhitespaceTokenizer;

impl Tokenizer for WhitespaceTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }
    fn name(&self) -> String {
        "ws".to_string()
    }
}

/// Alphanumeric (word) tokenizer: maximal runs of alphanumeric characters.
/// This is the "word-level tokenizer" of Section 7 — punctuation separates
/// tokens even without whitespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlphanumericTokenizer;

impl AlphanumericTokenizer {
    /// Visits each token as a borrowed slice of `s` without allocating.
    /// Tokens are maximal alphanumeric runs, so each one is a contiguous
    /// byte range of the input. This is the bulk-tokenization hot path
    /// ([`Tokenizer::tokenize`] delegates to it), kept in one place so the
    /// allocating and borrowing views can never disagree.
    pub fn for_each_token<'a>(&self, s: &'a str, mut f: impl FnMut(&'a str)) {
        let mut start = None;
        for (i, c) in s.char_indices() {
            if c.is_alphanumeric() {
                start.get_or_insert(i);
            } else if let Some(b) = start.take() {
                f(&s[b..i]);
            }
        }
        if let Some(b) = start {
            f(&s[b..]);
        }
    }
}

impl Tokenizer for AlphanumericTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        self.for_each_token(s, |t| tokens.push(t.to_string()));
        tokens
    }
    fn name(&self) -> String {
        "alnum".to_string()
    }
}

/// Character q-gram tokenizer.
///
/// With `padded = true` the string is framed with `q - 1` copies of `#` and
/// `$` (py_stringmatching's convention), so short strings still produce
/// discriminative grams; with `padded = false` strings shorter than `q`
/// produce a single whole-string token rather than nothing, which keeps
/// set similarities defined on short identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QgramTokenizer {
    /// Gram length (≥ 1).
    pub q: usize,
    /// Whether to frame the input with boundary padding characters.
    pub padded: bool,
}

impl QgramTokenizer {
    /// Unpadded q-grams of length `q` (the common feature-generation
    /// default: "Jaccard over 3-grams").
    pub fn new(q: usize) -> QgramTokenizer {
        QgramTokenizer { q: q.max(1), padded: false }
    }

    /// Padded q-grams of length `q`.
    pub fn padded(q: usize) -> QgramTokenizer {
        QgramTokenizer { q: q.max(1), padded: true }
    }
}

impl Tokenizer for QgramTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        if s.is_empty() {
            return Vec::new();
        }
        let chars: Vec<char> = if self.padded {
            let pad = self.q - 1;
            std::iter::repeat_n('#', pad)
                .chain(s.chars())
                .chain(std::iter::repeat_n('$', pad))
                .collect()
        } else {
            s.chars().collect()
        };
        if chars.len() < self.q {
            return vec![chars.iter().collect()];
        }
        chars.windows(self.q).map(|w| w.iter().collect()).collect()
    }
    fn name(&self) -> String {
        if self.padded {
            format!("qgm_{}p", self.q)
        } else {
            format!("qgm_{}", self.q)
        }
    }
}

/// Delimiter tokenizer: splits on one specific character, preserving empty
/// interior segments' neighbours but dropping empty tokens. Used for the
/// `|`-separated employee-name lists of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelimiterTokenizer {
    /// The delimiter character.
    pub delim: char,
}

impl Tokenizer for DelimiterTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        s.split(self.delim)
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(str::to_string)
            .collect()
    }
    fn name(&self) -> String {
        format!("delim_{}", self.delim)
    }
}

/// Deduplicated token set (the view set-similarity measures consume).
pub fn token_set(tokens: &[String]) -> HashSet<&str> {
    tokens.iter().map(String::as_str).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_splits() {
        assert_eq!(WhitespaceTokenizer.tokenize("a  b\tc"), vec!["a", "b", "c"]);
        assert!(WhitespaceTokenizer.tokenize("  ").is_empty());
    }

    #[test]
    fn alnum_splits_on_punctuation() {
        assert_eq!(
            AlphanumericTokenizer.tokenize("IPM-Based (Corn)"),
            vec!["IPM", "Based", "Corn"]
        );
    }

    #[test]
    fn alnum_for_each_matches_tokenize() {
        // Multi-byte chars, leading/trailing runs, and empty inputs all
        // agree between the borrowing and allocating views.
        for s in ["IPM-Based (Corn)", "café σ12!end", "", "---", "a", " x "] {
            let mut seen = Vec::new();
            AlphanumericTokenizer.for_each_token(s, |t| seen.push(t.to_string()));
            assert_eq!(seen, AlphanumericTokenizer.tokenize(s), "{s:?}");
        }
    }

    #[test]
    fn qgrams_basic() {
        assert_eq!(QgramTokenizer::new(3).tokenize("abcd"), vec!["abc", "bcd"]);
    }

    #[test]
    fn qgrams_short_string_yields_whole() {
        assert_eq!(QgramTokenizer::new(3).tokenize("ab"), vec!["ab"]);
        assert!(QgramTokenizer::new(3).tokenize("").is_empty());
    }

    #[test]
    fn qgrams_padded() {
        let toks = QgramTokenizer::padded(2).tokenize("ab");
        assert_eq!(toks, vec!["#a", "ab", "b$"]);
    }

    #[test]
    fn qgram_names() {
        assert_eq!(QgramTokenizer::new(3).name(), "qgm_3");
        assert_eq!(QgramTokenizer::padded(3).name(), "qgm_3p");
    }

    #[test]
    fn delimiter_trims_and_drops_empties() {
        let t = DelimiterTokenizer { delim: '|' };
        assert_eq!(t.tokenize("Smith, J | Doe, K ||"), vec!["Smith, J", "Doe, K"]);
    }

    #[test]
    fn token_set_dedups() {
        let toks = WhitespaceTokenizer.tokenize("a b a");
        assert_eq!(token_set(&toks).len(), 2);
    }

    #[test]
    fn qgram_q_clamped_to_one() {
        assert_eq!(QgramTokenizer::new(0).tokenize("ab"), vec!["a", "b"]);
    }
}
