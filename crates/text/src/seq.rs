//! Sequence (character-level) similarity measures: edit distances and
//! alignment scores. These back the string features PyMatcher generates
//! automatically (edit distance, Jaro, Jaro-Winkler, Needleman-Wunsch,
//! Smith-Waterman, affine gap).
//!
//! All `*_sim` functions return a similarity in `[0, 1]` with `1` meaning
//! identical; two empty strings are defined to have similarity `1`.
//!
//! Every measure comes in three tiers of the similarity-kernel engine:
//!
//! - `f(a: &str, b: &str)` — the original signature, now a thin wrapper
//!   that borrows the calling thread's [`KernelScratch`];
//! - `f_with(scratch, a, b)` — same inputs, explicit scratch, for callers
//!   holding their own arena (parallel workers, benches);
//! - `f_chars(scratch, a, b)` — the real kernel on pre-decoded `&[char]`
//!   slices, what the feature extractor's per-row normalization cache
//!   feeds so per-pair work never decodes or allocates.
//!
//! Levenshtein runs on the Myers bit-parallel engine ([`crate::myers`]);
//! the DP kernels reuse scratch rows instead of allocating. All of them
//! are bit-for-bit equivalent to the retained reference implementations
//! in [`crate::naive`], enforced by the property suite in `tests/prop.rs`.

use crate::myers;
use crate::scratch::{with_scratch, KernelScratch};

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
/// Myers bit-parallel: `O(⌈min(n,m)/64⌉·max(n,m))` time after prefix/suffix
/// trimming, no allocation on the hot path.
pub fn levenshtein(a: &str, b: &str) -> usize {
    with_scratch(|s| levenshtein_with(s, a, b))
}

/// [`levenshtein`] with an explicit scratch arena.
pub fn levenshtein_with(scratch: &mut KernelScratch, a: &str, b: &str) -> usize {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = levenshtein_chars(scratch, &ca, &cb);
    scratch.return_decoded(ca, cb);
    out
}

/// [`levenshtein`] on pre-decoded char slices.
pub fn levenshtein_chars(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> usize {
    myers::distance(scratch, a, b)
}

/// Levenshtein similarity: `1 - dist / max_len` (1.0 for two empty strings).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    with_scratch(|s| levenshtein_sim_with(s, a, b))
}

/// [`levenshtein_sim`] with an explicit scratch arena.
pub fn levenshtein_sim_with(scratch: &mut KernelScratch, a: &str, b: &str) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = levenshtein_sim_chars(scratch, &ca, &cb);
    scratch.return_decoded(ca, cb);
    out
}

/// [`levenshtein_sim`] on pre-decoded char slices.
pub fn levenshtein_sim_chars(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_chars(scratch, a, b) as f64 / max_len as f64
}

/// Damerau-Levenshtein distance (restricted: adjacent transpositions count
/// as one edit, no substring may be edited twice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    with_scratch(|s| damerau_levenshtein_with(s, a, b))
}

/// [`damerau_levenshtein`] with an explicit scratch arena.
pub fn damerau_levenshtein_with(scratch: &mut KernelScratch, a: &str, b: &str) -> usize {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = damerau_levenshtein_chars(scratch, &ca, &cb);
    scratch.return_decoded(ca, cb);
    out
}

/// [`damerau_levenshtein`] on pre-decoded char slices: three rotating
/// scratch rows instead of the reference implementation's full matrix.
pub fn damerau_levenshtein_chars(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // prev2 = row i-2, prev = row i-1, cur = row i of the reference DP.
    let mut prev2 = std::mem::take(&mut scratch.urow0);
    let mut prev = std::mem::take(&mut scratch.urow1);
    let mut cur = std::mem::take(&mut scratch.urow2);
    prev2.clear();
    prev2.resize(m + 1, 0);
    prev.clear();
    prev.extend(0..=m);
    cur.clear();
    cur.resize(m + 1, 0);
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            cur[j] = best;
        }
        // Rotate: i-1 becomes i-2, i becomes i-1, the old i-2 row is reused.
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    let out = prev[m];
    scratch.urow0 = prev2;
    scratch.urow1 = prev;
    scratch.urow2 = cur;
    out
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    with_scratch(|s| jaro_with(s, a, b))
}

/// [`jaro`] with an explicit scratch arena.
pub fn jaro_with(scratch: &mut KernelScratch, a: &str, b: &str) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = jaro_chars(scratch, &ca, &cb);
    scratch.return_decoded(ca, cb);
    out
}

/// [`jaro`] on pre-decoded char slices, using scratch match flags/buffers.
#[allow(clippy::needless_range_loop)] // windowed index scan reads more clearly than iterators
pub fn jaro_chars(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    scratch.flags.clear();
    scratch.flags.resize(b.len(), false);
    scratch.matches.clear();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !scratch.flags[j] && b[j] == *ca {
                scratch.flags[j] = true;
                scratch.matches.push(*ca);
                break;
            }
        }
    }
    let m = scratch.matches.len();
    if m == 0 {
        return 0.0;
    }
    // Matched chars of `b` in order, streamed off the flags — identical to
    // materializing the reference implementation's `matches_b` vector.
    let matches_b = b.iter().zip(&scratch.flags).filter(|(_, used)| **used).map(|(c, _)| *c);
    let transpositions =
        scratch.matches.iter().zip(matches_b).filter(|(x, y)| *x != y).count() / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale `p = 0.1` and a
/// maximum rewarded prefix of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    with_scratch(|s| jaro_winkler_with(s, a, b))
}

/// [`jaro_winkler`] with an explicit scratch arena.
pub fn jaro_winkler_with(scratch: &mut KernelScratch, a: &str, b: &str) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = jaro_winkler_chars(scratch, &ca, &cb);
    scratch.return_decoded(ca, cb);
    out
}

/// [`jaro_winkler`] on pre-decoded char slices.
pub fn jaro_winkler_chars(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> f64 {
    let j = jaro_chars(scratch, a, b);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Needleman-Wunsch global alignment score with unit match reward,
/// zero mismatch reward, and linear gap cost `gap`. Can be negative.
pub fn needleman_wunsch(a: &str, b: &str, gap: f64) -> f64 {
    with_scratch(|s| needleman_wunsch_with(s, a, b, gap))
}

/// [`needleman_wunsch`] with an explicit scratch arena.
pub fn needleman_wunsch_with(scratch: &mut KernelScratch, a: &str, b: &str, gap: f64) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = needleman_wunsch_chars(scratch, &ca, &cb, gap);
    scratch.return_decoded(ca, cb);
    out
}

/// [`needleman_wunsch`] on pre-decoded char slices using scratch DP rows.
pub fn needleman_wunsch_chars(
    scratch: &mut KernelScratch,
    a: &[char],
    b: &[char],
    gap: f64,
) -> f64 {
    let mut prev = std::mem::take(&mut scratch.frow0);
    let mut cur = std::mem::take(&mut scratch.frow1);
    prev.clear();
    prev.extend((0..=b.len()).map(|j| -(j as f64) * gap));
    cur.clear();
    cur.resize(b.len() + 1, 0.0);
    for (i, ca) in a.iter().enumerate() {
        cur[0] = -((i + 1) as f64) * gap;
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { 1.0 } else { 0.0 };
            cur[j + 1] = diag.max(prev[j + 1] - gap).max(cur[j] - gap);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let out = prev[b.len()];
    scratch.frow0 = prev;
    scratch.frow1 = cur;
    out
}

/// Needleman-Wunsch similarity: score with `gap = 1`, clamped at 0 and
/// normalized by the longer length (1.0 for two empty strings).
pub fn needleman_wunsch_sim(a: &str, b: &str) -> f64 {
    with_scratch(|s| needleman_wunsch_sim_with(s, a, b))
}

/// [`needleman_wunsch_sim`] with an explicit scratch arena.
pub fn needleman_wunsch_sim_with(scratch: &mut KernelScratch, a: &str, b: &str) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = needleman_wunsch_sim_chars(scratch, &ca, &cb);
    scratch.return_decoded(ca, cb);
    out
}

/// [`needleman_wunsch_sim`] on pre-decoded char slices.
pub fn needleman_wunsch_sim_chars(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    (needleman_wunsch_chars(scratch, a, b, 1.0).max(0.0)) / max_len as f64
}

/// Smith-Waterman local alignment score with unit match reward, zero
/// mismatch reward, and linear gap cost `gap`. Non-negative by construction.
pub fn smith_waterman(a: &str, b: &str, gap: f64) -> f64 {
    with_scratch(|s| smith_waterman_with(s, a, b, gap))
}

/// [`smith_waterman`] with an explicit scratch arena.
pub fn smith_waterman_with(scratch: &mut KernelScratch, a: &str, b: &str, gap: f64) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = smith_waterman_chars(scratch, &ca, &cb, gap);
    scratch.return_decoded(ca, cb);
    out
}

/// [`smith_waterman`] on pre-decoded char slices using scratch DP rows.
pub fn smith_waterman_chars(scratch: &mut KernelScratch, a: &[char], b: &[char], gap: f64) -> f64 {
    let mut prev = std::mem::take(&mut scratch.frow0);
    let mut cur = std::mem::take(&mut scratch.frow1);
    prev.clear();
    prev.resize(b.len() + 1, 0.0);
    cur.clear();
    cur.resize(b.len() + 1, 0.0);
    let mut best = 0.0f64;
    for ca in a {
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { 1.0 } else { 0.0 };
            cur[j + 1] = diag.max(prev[j + 1] - gap).max(cur[j] - gap).max(0.0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    scratch.frow0 = prev;
    scratch.frow1 = cur;
    best
}

/// Smith-Waterman similarity: score with `gap = 1` normalized by the shorter
/// length — the best local alignment cannot exceed it (1.0 for two empties).
pub fn smith_waterman_sim(a: &str, b: &str) -> f64 {
    with_scratch(|s| smith_waterman_sim_with(s, a, b))
}

/// [`smith_waterman_sim`] with an explicit scratch arena.
pub fn smith_waterman_sim_with(scratch: &mut KernelScratch, a: &str, b: &str) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = smith_waterman_sim_chars(scratch, &ca, &cb);
    scratch.return_decoded(ca, cb);
    out
}

/// [`smith_waterman_sim`] on pre-decoded char slices.
pub fn smith_waterman_sim_chars(scratch: &mut KernelScratch, a: &[char], b: &[char]) -> f64 {
    let min_len = a.len().min(b.len());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() { 1.0 } else { 0.0 };
    }
    smith_waterman_chars(scratch, a, b, 1.0) / min_len as f64
}

/// Affine-gap global alignment score (Gotoh): gap opening cost `open`,
/// per-character continuation cost `extend`, unit match, zero mismatch.
pub fn affine_gap(a: &str, b: &str, open: f64, extend: f64) -> f64 {
    with_scratch(|s| affine_gap_with(s, a, b, open, extend))
}

/// [`affine_gap`] with an explicit scratch arena.
pub fn affine_gap_with(
    scratch: &mut KernelScratch,
    a: &str,
    b: &str,
    open: f64,
    extend: f64,
) -> f64 {
    let (ca, cb) = scratch.take_decoded(a, b);
    let out = affine_gap_chars(scratch, &ca, &cb, open, extend);
    scratch.return_decoded(ca, cb);
    out
}

/// [`affine_gap`] on pre-decoded char slices: six scratch rows (previous +
/// current of the M/X/Y matrices) instead of fresh vectors per row.
#[allow(clippy::needless_range_loop)] // index DP reads more clearly than zipped iterators
pub fn affine_gap_chars(
    scratch: &mut KernelScratch,
    a: &[char],
    b: &[char],
    open: f64,
    extend: f64,
) -> f64 {
    let neg = f64::NEG_INFINITY;
    let n = a.len();
    let m = b.len();
    // m_[j]: best score ending in a match/mismatch; x: gap in b; y: gap in a.
    let mut m_prev = std::mem::take(&mut scratch.frow0);
    let mut x_prev = std::mem::take(&mut scratch.frow1);
    let mut y_prev = std::mem::take(&mut scratch.frow2);
    let mut m_cur = std::mem::take(&mut scratch.frow3);
    let mut x_cur = std::mem::take(&mut scratch.frow4);
    let mut y_cur = std::mem::take(&mut scratch.frow5);
    for row in [&mut m_prev, &mut x_prev, &mut y_prev] {
        row.clear();
        row.resize(m + 1, neg);
    }
    m_prev[0] = 0.0;
    for j in 1..=m {
        y_prev[j] = -open - (j - 1) as f64 * extend;
    }
    for i in 1..=n {
        for row in [&mut m_cur, &mut x_cur, &mut y_cur] {
            row.clear();
            row.resize(m + 1, neg);
        }
        x_cur[0] = -open - (i - 1) as f64 * extend;
        for j in 1..=m {
            let score = if a[i - 1] == b[j - 1] { 1.0 } else { 0.0 };
            m_cur[j] = score + m_prev[j - 1].max(x_prev[j - 1]).max(y_prev[j - 1]);
            x_cur[j] = (m_prev[j] - open).max(x_prev[j] - extend);
            y_cur[j] = (m_cur[j - 1] - open).max(y_cur[j - 1] - extend);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut x_prev, &mut x_cur);
        std::mem::swap(&mut y_prev, &mut y_cur);
    }
    let out = m_prev[m].max(x_prev[m]).max(y_prev[m]);
    scratch.frow0 = m_prev;
    scratch.frow1 = x_prev;
    scratch.frow2 = y_prev;
    scratch.frow3 = m_cur;
    scratch.frow4 = x_cur;
    scratch.frow5 = y_cur;
    out
}

/// Exact string equality as a 0/1 similarity.
pub fn exact_sim(a: &str, b: &str) -> f64 {
    f64::from(a == b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        close(levenshtein_sim("", ""), 1.0);
        close(levenshtein_sim("abc", "abc"), 1.0);
        close(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("a cat", "a abct"), 3);
    }

    #[test]
    fn jaro_known_values() {
        close(jaro("MARTHA", "MARHTA"), 0.9444444444444445);
        close(jaro("DIXON", "DICKSONX"), 0.7666666666666666);
        close(jaro("", ""), 1.0);
        close(jaro("a", ""), 0.0);
        close(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        close(jaro_winkler("MARTHA", "MARHTA"), 0.9611111111111111);
        close(jaro_winkler("DWAYNE", "DUANE"), 0.8400000000000001);
        assert!(jaro_winkler("prefix", "pref") > jaro("prefix", "pref"));
    }

    #[test]
    fn nw_identical_and_disjoint() {
        close(needleman_wunsch("abc", "abc", 1.0), 3.0);
        close(needleman_wunsch_sim("abc", "abc"), 1.0);
        assert!(needleman_wunsch("abc", "xyz", 1.0) <= 0.0);
        close(needleman_wunsch_sim("", ""), 1.0);
    }

    #[test]
    fn nw_gap_cost_applied() {
        // align "ab" with "axb": one gap → 2 matches - 1 gap = 1
        close(needleman_wunsch("ab", "axb", 1.0), 1.0);
    }

    #[test]
    fn sw_finds_local_match() {
        close(smith_waterman("xxhelloyy", "zzhellozz", 1.0), 5.0);
        close(smith_waterman_sim("abc", "abc"), 1.0);
        close(smith_waterman_sim("", "a"), 0.0);
        close(smith_waterman_sim("", ""), 1.0);
    }

    #[test]
    fn affine_gap_prefers_one_long_gap() {
        // "abcd" vs "ad": the two middle chars are one gap.
        let one_gap = affine_gap("abcd", "ad", 1.0, 0.5);
        close(one_gap, 2.0 - 1.0 - 0.5); // 2 matches - open - one extension
        // identical strings score their length
        close(affine_gap("abc", "abc", 1.0, 0.5), 3.0);
    }

    #[test]
    fn affine_gap_empty_cases() {
        close(affine_gap("", "", 1.0, 0.5), 0.0);
        close(affine_gap("ab", "", 1.0, 0.5), -1.5);
    }

    #[test]
    fn exact_sim_cases() {
        close(exact_sim("a", "a"), 1.0);
        close(exact_sim("a", "A"), 0.0);
    }

    #[test]
    fn all_sims_symmetric() {
        for (a, b) in [("grant title", "grant titel"), ("WIS01040", "WIS04059"), ("", "x")] {
            close(levenshtein_sim(a, b), levenshtein_sim(b, a));
            close(jaro(a, b), jaro(b, a));
            close(jaro_winkler(a, b), jaro_winkler(b, a));
            close(needleman_wunsch_sim(a, b), needleman_wunsch_sim(b, a));
            close(smith_waterman_sim(a, b), smith_waterman_sim(b, a));
        }
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert!(jaro("naïve", "naive") > 0.8);
    }

    #[test]
    fn explicit_scratch_matches_wrappers() {
        let mut s = KernelScratch::new();
        for (a, b) in [("corn fungicide", "corn fungicides"), ("", "x"), ("Lab Supplies", "Lab Supplies")] {
            assert_eq!(levenshtein_with(&mut s, a, b), levenshtein(a, b));
            assert_eq!(damerau_levenshtein_with(&mut s, a, b), damerau_levenshtein(a, b));
            assert_eq!(jaro_with(&mut s, a, b).to_bits(), jaro(a, b).to_bits());
            assert_eq!(jaro_winkler_with(&mut s, a, b).to_bits(), jaro_winkler(a, b).to_bits());
            assert_eq!(
                needleman_wunsch_sim_with(&mut s, a, b).to_bits(),
                needleman_wunsch_sim(a, b).to_bits()
            );
            assert_eq!(
                smith_waterman_sim_with(&mut s, a, b).to_bits(),
                smith_waterman_sim(a, b).to_bits()
            );
            assert_eq!(
                affine_gap_with(&mut s, a, b, 1.0, 0.5).to_bits(),
                affine_gap(a, b, 1.0, 0.5).to_bits()
            );
        }
    }
}
