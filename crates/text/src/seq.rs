//! Sequence (character-level) similarity measures: edit distances and
//! alignment scores. These back the string features PyMatcher generates
//! automatically (edit distance, Jaro, Jaro-Winkler, Needleman-Wunsch,
//! Smith-Waterman, affine gap).
//!
//! All `*_sim` functions return a similarity in `[0, 1]` with `1` meaning
//! identical; two empty strings are defined to have similarity `1`.

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
/// `O(|a|·|b|)` time, `O(min(|a|,|b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein similarity: `1 - dist / max_len` (1.0 for two empty strings).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Damerau-Levenshtein distance (restricted: adjacent transpositions count
/// as one edit, no substring may be edited twice).
#[allow(clippy::needless_range_loop)] // index DP reads more clearly than zipped iterators
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for j in 0..=m {
        d[0][j] = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1).min(d[i][j - 1] + 1).min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> =
        b.iter().zip(&b_used).filter(|(_, used)| **used).map(|(c, _)| *c).collect();
    let transpositions =
        matches_a.iter().zip(&matches_b).filter(|(x, y)| x != y).count() / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale `p = 0.1` and a
/// maximum rewarded prefix of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Needleman-Wunsch global alignment score with unit match reward,
/// zero mismatch reward, and linear gap cost `gap`. Can be negative.
pub fn needleman_wunsch(a: &str, b: &str, gap: f64) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<f64> = (0..=b.len()).map(|j| -(j as f64) * gap).collect();
    let mut cur = vec![0.0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = -((i + 1) as f64) * gap;
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { 1.0 } else { 0.0 };
            cur[j + 1] = diag.max(prev[j + 1] - gap).max(cur[j] - gap);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Needleman-Wunsch similarity: score with `gap = 1`, clamped at 0 and
/// normalized by the longer length (1.0 for two empty strings).
pub fn needleman_wunsch_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    (needleman_wunsch(a, b, 1.0).max(0.0)) / max_len as f64
}

/// Smith-Waterman local alignment score with unit match reward, zero
/// mismatch reward, and linear gap cost `gap`. Non-negative by construction.
pub fn smith_waterman(a: &str, b: &str, gap: f64) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev = vec![0.0f64; b.len() + 1];
    let mut cur = vec![0.0f64; b.len() + 1];
    let mut best = 0.0f64;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { 1.0 } else { 0.0 };
            cur[j + 1] = diag.max(prev[j + 1] - gap).max(cur[j] - gap).max(0.0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Smith-Waterman similarity: score with `gap = 1` normalized by the shorter
/// length — the best local alignment cannot exceed it (1.0 for two empties).
pub fn smith_waterman_sim(a: &str, b: &str) -> f64 {
    let min_len = a.chars().count().min(b.chars().count());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() { 1.0 } else { 0.0 };
    }
    smith_waterman(a, b, 1.0) / min_len as f64
}

/// Affine-gap global alignment score (Gotoh): gap opening cost `open`,
/// per-character continuation cost `extend`, unit match, zero mismatch.
#[allow(clippy::needless_range_loop)] // index DP reads more clearly than zipped iterators
pub fn affine_gap(a: &str, b: &str, open: f64, extend: f64) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let neg = f64::NEG_INFINITY;
    let n = a.len();
    let m = b.len();
    // m_[j]: best score ending in a match/mismatch; x: gap in b; y: gap in a.
    let mut m_prev = vec![neg; m + 1];
    let mut x_prev = vec![neg; m + 1];
    let mut y_prev = vec![neg; m + 1];
    m_prev[0] = 0.0;
    for j in 1..=m {
        y_prev[j] = -open - (j - 1) as f64 * extend;
    }
    for i in 1..=n {
        let mut m_cur = vec![neg; m + 1];
        let mut x_cur = vec![neg; m + 1];
        let mut y_cur = vec![neg; m + 1];
        x_cur[0] = -open - (i - 1) as f64 * extend;
        for j in 1..=m {
            let score = if a[i - 1] == b[j - 1] { 1.0 } else { 0.0 };
            m_cur[j] = score + m_prev[j - 1].max(x_prev[j - 1]).max(y_prev[j - 1]);
            x_cur[j] = (m_prev[j] - open).max(x_prev[j] - extend);
            y_cur[j] = (m_cur[j - 1] - open).max(y_cur[j - 1] - extend);
        }
        m_prev = m_cur;
        x_prev = x_cur;
        y_prev = y_cur;
    }
    m_prev[m].max(x_prev[m]).max(y_prev[m])
}

/// Exact string equality as a 0/1 similarity.
pub fn exact_sim(a: &str, b: &str) -> f64 {
    f64::from(a == b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        close(levenshtein_sim("", ""), 1.0);
        close(levenshtein_sim("abc", "abc"), 1.0);
        close(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("a cat", "a abct"), 3);
    }

    #[test]
    fn jaro_known_values() {
        close(jaro("MARTHA", "MARHTA"), 0.9444444444444445);
        close(jaro("DIXON", "DICKSONX"), 0.7666666666666666);
        close(jaro("", ""), 1.0);
        close(jaro("a", ""), 0.0);
        close(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        close(jaro_winkler("MARTHA", "MARHTA"), 0.9611111111111111);
        close(jaro_winkler("DWAYNE", "DUANE"), 0.8400000000000001);
        assert!(jaro_winkler("prefix", "pref") > jaro("prefix", "pref"));
    }

    #[test]
    fn nw_identical_and_disjoint() {
        close(needleman_wunsch("abc", "abc", 1.0), 3.0);
        close(needleman_wunsch_sim("abc", "abc"), 1.0);
        assert!(needleman_wunsch("abc", "xyz", 1.0) <= 0.0);
        close(needleman_wunsch_sim("", ""), 1.0);
    }

    #[test]
    fn nw_gap_cost_applied() {
        // align "ab" with "axb": one gap → 2 matches - 1 gap = 1
        close(needleman_wunsch("ab", "axb", 1.0), 1.0);
    }

    #[test]
    fn sw_finds_local_match() {
        close(smith_waterman("xxhelloyy", "zzhellozz", 1.0), 5.0);
        close(smith_waterman_sim("abc", "abc"), 1.0);
        close(smith_waterman_sim("", "a"), 0.0);
        close(smith_waterman_sim("", ""), 1.0);
    }

    #[test]
    fn affine_gap_prefers_one_long_gap() {
        // "abcd" vs "ad": the two middle chars are one gap.
        let one_gap = affine_gap("abcd", "ad", 1.0, 0.5);
        close(one_gap, 2.0 - 1.0 - 0.5); // 2 matches - open - one extension
        // identical strings score their length
        close(affine_gap("abc", "abc", 1.0, 0.5), 3.0);
    }

    #[test]
    fn affine_gap_empty_cases() {
        close(affine_gap("", "", 1.0, 0.5), 0.0);
        close(affine_gap("ab", "", 1.0, 0.5), -1.5);
    }

    #[test]
    fn exact_sim_cases() {
        close(exact_sim("a", "a"), 1.0);
        close(exact_sim("a", "A"), 0.0);
    }

    #[test]
    fn all_sims_symmetric() {
        for (a, b) in [("grant title", "grant titel"), ("WIS01040", "WIS04059"), ("", "x")] {
            close(levenshtein_sim(a, b), levenshtein_sim(b, a));
            close(jaro(a, b), jaro(b, a));
            close(jaro_winkler(a, b), jaro_winkler(b, a));
            close(needleman_wunsch_sim(a, b), needleman_wunsch_sim(b, a));
            close(smith_waterman_sim(a, b), smith_waterman_sim(b, a));
        }
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert!(jaro("naïve", "naive") > 0.8);
    }
}
