//! A small, fast, non-cryptographic hasher for interner and memo tables.
//!
//! The std `HashMap` defaults to SipHash-1-3, whose DoS resistance costs
//! real time on the tiny keys the similarity engine hashes millions of
//! times (3-gram windows, `(u32, u32)` memo keys, short word tokens). This
//! multiply-rotate hasher — the same shape rustc uses internally — is
//! several times cheaper on such keys. It is **only** for tables keyed by
//! trusted, pipeline-internal data; never hash attacker-controlled input
//! with it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher state. Deterministic (no per-process seed), which
/// also keeps interner id assignment reproducible run to run.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

/// Odd multiplier with high entropy; the rotate spreads low-order entropy
/// into the bits `HashMap` uses for bucket selection.
const K: u64 = 0xf135_7aea_2e62_a9c5;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" hash differently.
            buf[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinguishes_close_keys() {
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&['a', 'b', 'c']), hash_of(&['a', 'b', 'd']));
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&"same key"), hash_of(&"same key"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FastMap<(u32, u32), f64> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), f64::from(i));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(41, 287)), Some(&41.0));
    }
}
