//! Token-set similarity measures: Jaccard, overlap, overlap coefficient,
//! Dice, cosine, Tversky, and Monge-Elkan.
//!
//! These operate on pre-tokenized inputs (slices of tokens) using **set**
//! semantics — duplicates are collapsed, matching py_stringmatching and the
//! paper's blockers (the overlap blocker counts *shared tokens*, and
//! `overlap_coefficient(X, Y) = |X ∩ Y| / min(|X|, |Y|)` per Section 7).
//!
//! Conventions for degenerate inputs: two empty token lists have similarity
//! `1.0` (identical), one empty and one non-empty have `0.0`.

use std::collections::HashSet;

fn sets<'a>(a: &'a [String], b: &'a [String]) -> (HashSet<&'a str>, HashSet<&'a str>) {
    (
        a.iter().map(String::as_str).collect(),
        b.iter().map(String::as_str).collect(),
    )
}

fn intersection_size(a: &HashSet<&str>, b: &HashSet<&str>) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().filter(|t| large.contains(*t)).count()
}

/// Number of shared distinct tokens, `|A ∩ B|` — what the overlap blocker
/// thresholds on.
pub fn overlap_size(a: &[String], b: &[String]) -> usize {
    let (sa, sb) = sets(a, b);
    intersection_size(&sa, &sb)
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (sa, sb) = sets(a, b);
    let inter = intersection_size(&sa, &sb);
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` — the blocker of
/// Section 7 step 3, robust to very short titles.
pub fn overlap_coefficient(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (sa, sb) = sets(a, b);
    intersection_size(&sa, &sb) as f64 / sa.len().min(sb.len()) as f64
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`.
pub fn dice(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (sa, sb) = sets(a, b);
    let denom = sa.len() + sb.len();
    if denom == 0 {
        1.0
    } else {
        2.0 * intersection_size(&sa, &sb) as f64 / denom as f64
    }
}

/// Set cosine (Ochiai) `|A ∩ B| / sqrt(|A| · |B|)`.
pub fn cosine(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (sa, sb) = sets(a, b);
    intersection_size(&sa, &sb) as f64 / ((sa.len() * sb.len()) as f64).sqrt()
}

/// Tversky index with parameters `alpha`, `beta`:
/// `|A∩B| / (|A∩B| + α|A−B| + β|B−A|)`. Jaccard is `α = β = 1`; Dice is
/// `α = β = 0.5`.
pub fn tversky(a: &[String], b: &[String], alpha: f64, beta: f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (sa, sb) = sets(a, b);
    let inter = intersection_size(&sa, &sb) as f64;
    let only_a = (sa.len() - inter as usize) as f64;
    let only_b = (sb.len() - inter as usize) as f64;
    let denom = inter + alpha * only_a + beta * only_b;
    if denom == 0.0 {
        1.0
    } else {
        inter / denom
    }
}

/// Monge-Elkan: mean over tokens of `a` of the best `inner` similarity to
/// any token of `b`. Asymmetric; see [`monge_elkan_sym`] for the symmetric
/// average. `0.0` when `a` is empty and `b` is not; `1.0` for two empties.
pub fn monge_elkan<F: Fn(&str, &str) -> f64>(a: &[String], b: &[String], inner: F) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let total: f64 = a
        .iter()
        .map(|ta| {
            b.iter()
                .map(|tb| inner(ta, tb))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .sum();
    total / a.len() as f64
}

/// Symmetric Monge-Elkan: the mean of both directed scores.
pub fn monge_elkan_sym<F: Fn(&str, &str) -> f64 + Copy>(
    a: &[String],
    b: &[String],
    inner: F,
) -> f64 {
    (monge_elkan(a, b, inner) + monge_elkan(b, a, inner)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::jaro_winkler;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn jaccard_known() {
        close(jaccard(&toks("a b c"), &toks("b c d")), 0.5);
        close(jaccard(&toks("a"), &toks("a")), 1.0);
        close(jaccard(&toks(""), &toks("")), 1.0);
        close(jaccard(&toks("a"), &toks("")), 0.0);
    }

    #[test]
    fn jaccard_uses_set_semantics() {
        close(jaccard(&toks("a a b"), &toks("a b")), 1.0);
    }

    #[test]
    fn overlap_size_counts_distinct_shared() {
        assert_eq!(overlap_size(&toks("a b c c"), &toks("c b z")), 2);
        assert_eq!(overlap_size(&toks(""), &toks("x")), 0);
    }

    #[test]
    fn overlap_coefficient_known() {
        // paper Section 7: |X∩Y| / min(|X|,|Y|)
        close(overlap_coefficient(&toks("lab supplies"), &toks("lab supplies extra")), 1.0);
        close(overlap_coefficient(&toks("a b"), &toks("b c d")), 0.5);
        close(overlap_coefficient(&toks(""), &toks("")), 1.0);
        close(overlap_coefficient(&toks(""), &toks("a")), 0.0);
    }

    #[test]
    fn overlap_coefficient_ge_jaccard() {
        for (x, y) in [("a b c", "b c d"), ("a", "a b c d"), ("q w e", "e")] {
            assert!(overlap_coefficient(&toks(x), &toks(y)) >= jaccard(&toks(x), &toks(y)));
        }
    }

    #[test]
    fn dice_known() {
        close(dice(&toks("a b"), &toks("b c")), 0.5);
        close(dice(&toks(""), &toks("")), 1.0);
    }

    #[test]
    fn cosine_known() {
        close(cosine(&toks("a b c d"), &toks("a")), 0.5);
        close(cosine(&toks("a"), &toks("")), 0.0);
    }

    #[test]
    fn tversky_generalizes() {
        let (a, b) = (toks("a b c"), toks("b c d"));
        close(tversky(&a, &b, 1.0, 1.0), jaccard(&a, &b));
        close(tversky(&a, &b, 0.5, 0.5), dice(&a, &b));
    }

    #[test]
    fn monge_elkan_exact_inner() {
        let inner = |x: &str, y: &str| f64::from(x == y);
        close(monge_elkan(&toks("a b"), &toks("a z"), inner), 0.5);
        close(monge_elkan(&toks(""), &toks(""), inner), 1.0);
        close(monge_elkan(&toks("a"), &toks(""), inner), 0.0);
    }

    #[test]
    fn monge_elkan_is_asymmetric_sym_fixes() {
        let a = toks("development of guidelines");
        let b = toks("development");
        let me_ab = monge_elkan(&a, &b, jaro_winkler);
        let me_ba = monge_elkan(&b, &a, jaro_winkler);
        assert!(me_ba > me_ab);
        let sym = monge_elkan_sym(&a, &b, jaro_winkler);
        close(sym, (me_ab + me_ba) / 2.0);
    }

    #[test]
    fn all_in_unit_interval() {
        let pairs = [
            ("corn fungicide guidelines", "corn guidelines"),
            ("", "x y"),
            ("a a a", "a"),
        ];
        for (x, y) in pairs {
            for v in [
                jaccard(&toks(x), &toks(y)),
                overlap_coefficient(&toks(x), &toks(y)),
                dice(&toks(x), &toks(y)),
                cosine(&toks(x), &toks(y)),
                tversky(&toks(x), &toks(y), 0.7, 0.3),
            ] {
                assert!((0.0..=1.0).contains(&v), "{v} out of range for ({x}, {y})");
            }
        }
    }
}
