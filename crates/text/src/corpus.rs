//! Corpus-weighted similarity: TF-IDF cosine and soft TF-IDF.
//!
//! Generic titles ("Lab Supplies") caused labeling trouble in the case study
//! precisely because every-token-is-common pairs look similar under plain
//! set measures. TF-IDF down-weights ubiquitous tokens so that sharing
//! *rare* tokens counts for more; soft TF-IDF additionally credits
//! near-matching tokens (via a secondary similarity such as Jaro-Winkler)
//! to tolerate typos.

use std::collections::HashMap;

/// Token statistics over a document collection, supporting TF-IDF weights.
///
/// Build one corpus over the union of both tables' tokenized attribute
/// values, then score pairs with [`TfIdfCorpus::cosine`] or
/// [`TfIdfCorpus::soft_cosine`].
#[derive(Debug, Clone, Default)]
pub struct TfIdfCorpus {
    doc_freq: HashMap<String, usize>,
    n_docs: usize,
}

impl TfIdfCorpus {
    /// Empty corpus (every token gets the smoothed minimum IDF).
    pub fn new() -> TfIdfCorpus {
        TfIdfCorpus::default()
    }

    /// Builds a corpus from tokenized documents.
    pub fn from_documents<'a, I>(docs: I) -> TfIdfCorpus
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut c = TfIdfCorpus::new();
        for d in docs {
            c.add_document(d);
        }
        c
    }

    /// Adds one tokenized document to the statistics.
    pub fn add_document(&mut self, tokens: &[String]) {
        self.n_docs += 1;
        let mut seen = std::collections::HashSet::new();
        for t in tokens {
            if seen.insert(t.as_str()) {
                *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents added.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Smoothed inverse document frequency:
    /// `ln((1 + N) / (1 + df)) + 1`, strictly positive, defined for unseen
    /// tokens (df = 0).
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        ((1.0 + self.n_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    fn weight_vector<'a>(&self, tokens: &'a [String]) -> HashMap<&'a str, f64> {
        let mut tf: HashMap<&str, f64> = HashMap::new();
        for t in tokens {
            *tf.entry(t.as_str()).or_insert(0.0) += 1.0;
        }
        for (t, w) in tf.iter_mut() {
            *w *= self.idf(t);
        }
        tf
    }

    /// TF-IDF cosine similarity between two tokenized strings, in `[0, 1]`.
    /// Two empty token lists score `1.0`; one empty scores `0.0`.
    pub fn cosine(&self, a: &[String], b: &[String]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let va = self.weight_vector(a);
        let vb = self.weight_vector(b);
        let dot: f64 = va
            .iter()
            .filter_map(|(t, wa)| vb.get(t).map(|wb| wa * wb))
            .sum();
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Soft TF-IDF (Cohen et al.): like [`cosine`](Self::cosine) but tokens
    /// of `a` are matched to their most-similar token of `b` under `inner`,
    /// and pairs with `inner >= threshold` contribute
    /// `w_a(t) · w_b(closest) · inner(t, closest)` to the dot product.
    pub fn soft_cosine<F: Fn(&str, &str) -> f64>(
        &self,
        a: &[String],
        b: &[String],
        threshold: f64,
        inner: F,
    ) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let va = self.weight_vector(a);
        let vb = self.weight_vector(b);
        let mut dot = 0.0;
        for (ta, wa) in &va {
            let mut best: Option<(f64, f64)> = None; // (sim, wb)
            for (tb, wb) in &vb {
                let s = inner(ta, tb);
                if s >= threshold && best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, *wb));
                }
            }
            if let Some((s, wb)) = best {
                dot += wa * wb * s;
            }
        }
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::jaro_winkler;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn corpus() -> TfIdfCorpus {
        TfIdfCorpus::from_documents(
            [
                toks("corn fungicide guidelines north central states"),
                toks("swamp dodder ecology management carrot production"),
                toks("lab supplies"),
                toks("lab supplies"),
                toks("lab supplies"),
                toks("maize genetics epigenetic silencing"),
            ]
            .iter()
            .map(Vec::as_slice),
        )
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let c = corpus();
        assert!(c.idf("fungicide") > c.idf("lab"));
        assert!(c.idf("unseen-token") >= c.idf("fungicide"));
    }

    #[test]
    fn identical_docs_score_one() {
        let c = corpus();
        let t = toks("corn fungicide guidelines");
        assert!((c.cosine(&t, &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_docs_score_zero() {
        let c = corpus();
        assert_eq!(c.cosine(&toks("corn"), &toks("dodder")), 0.0);
    }

    #[test]
    fn rare_shared_token_beats_common_shared_token() {
        let c = corpus();
        // Both pairs share exactly one of their two tokens.
        let rare = c.cosine(&toks("fungicide x"), &toks("fungicide y"));
        let common = c.cosine(&toks("lab x"), &toks("lab y"));
        assert!(rare > common, "{rare} <= {common}");
    }

    #[test]
    fn empty_conventions() {
        let c = corpus();
        assert_eq!(c.cosine(&[], &[]), 1.0);
        assert_eq!(c.cosine(&toks("a"), &[]), 0.0);
        assert_eq!(c.soft_cosine(&[], &[], 0.9, jaro_winkler), 1.0);
    }

    #[test]
    fn soft_cosine_tolerates_typos() {
        let c = corpus();
        let exact = c.cosine(&toks("fungicide guidelines"), &toks("fungicide guidelnes"));
        let soft =
            c.soft_cosine(&toks("fungicide guidelines"), &toks("fungicide guidelnes"), 0.9, jaro_winkler);
        assert!(soft > exact, "{soft} <= {exact}");
        assert!(soft <= 1.0);
    }

    #[test]
    fn soft_cosine_threshold_blocks_weak_matches() {
        let c = corpus();
        let s = c.soft_cosine(&toks("corn"), &toks("dodder"), 0.9, jaro_winkler);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn empty_corpus_still_defined() {
        let c = TfIdfCorpus::new();
        let s = c.cosine(&toks("a b"), &toks("a b"));
        assert!((s - 1.0).abs() < 1e-9);
    }
}
