//! # em-text — tokenizers and string similarity for entity matching
//!
//! Hand-rolled equivalents of py_stringmatching, covering every measure the
//! case study's feature generation and blocking use:
//!
//! - **Normalization** ([`normalize`]): the lowercase / strip-specials /
//!   collapse-whitespace pipeline applied before blocking.
//! - **Tokenizers** ([`tokenize`]): whitespace, word (alphanumeric), q-gram,
//!   and delimiter tokenizers.
//! - **Sequence similarity** ([`seq`]): Levenshtein, Damerau, Jaro,
//!   Jaro-Winkler, Needleman-Wunsch, Smith-Waterman, affine gap — backed by
//!   the similarity-kernel engine: Myers bit-parallel Levenshtein
//!   ([`myers`]), a reusable per-thread scratch arena ([`scratch`]), and
//!   `*_chars` kernels over pre-decoded slices. The original per-cell DPs
//!   live on in [`naive`] as the property-test reference.
//! - **Set similarity** ([`set`]): Jaccard, overlap, overlap coefficient,
//!   Dice, cosine, Tversky, Monge-Elkan.
//! - **Corpus-weighted similarity** ([`corpus`]): TF-IDF and soft TF-IDF.
//! - **Token interning** ([`intern`]): tokenize-once caches and `u32`
//!   token-id set measures backing the blockers' and features' hot paths.
//! - **Numeric comparators** ([`numeric`]): exact, absolute/relative
//!   difference, year gaps.
//! - **Phonetic encoding** ([`phonetic`]): American Soundex.
//!
//! ```
//! use em_text::tokenize::{QgramTokenizer, Tokenizer};
//! use em_text::set::jaccard;
//!
//! let t = QgramTokenizer::new(3);
//! let a = t.tokenize("corn fungicide");
//! let b = t.tokenize("corn fungicides");
//! assert!(jaccard(&a, &b) > 0.8);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod fasthash;
pub mod intern;
pub mod myers;
pub mod naive;
pub mod normalize;
pub mod numeric;
pub mod phonetic;
pub mod scratch;
pub mod seq;
pub mod set;
pub mod tokenize;

pub use corpus::TfIdfCorpus;
pub use fasthash::{FastMap, FastSet};
pub use intern::{TokenCache, TokenCorpus, TEXT_MEMO_CAP};
pub use normalize::Normalizer;
pub use scratch::{with_scratch, KernelScratch};
pub use tokenize::{
    AlphanumericTokenizer, DelimiterTokenizer, QgramTokenizer, Tokenizer, WhitespaceTokenizer,
};
