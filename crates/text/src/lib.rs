//! # em-text — tokenizers and string similarity for entity matching
//!
//! Hand-rolled equivalents of py_stringmatching, covering every measure the
//! case study's feature generation and blocking use:
//!
//! - **Normalization** ([`normalize`]): the lowercase / strip-specials /
//!   collapse-whitespace pipeline applied before blocking.
//! - **Tokenizers** ([`tokenize`]): whitespace, word (alphanumeric), q-gram,
//!   and delimiter tokenizers.
//! - **Sequence similarity** ([`seq`]): Levenshtein, Damerau, Jaro,
//!   Jaro-Winkler, Needleman-Wunsch, Smith-Waterman, affine gap.
//! - **Set similarity** ([`set`]): Jaccard, overlap, overlap coefficient,
//!   Dice, cosine, Tversky, Monge-Elkan.
//! - **Corpus-weighted similarity** ([`corpus`]): TF-IDF and soft TF-IDF.
//! - **Token interning** ([`intern`]): tokenize-once caches and `u32`
//!   token-id set measures backing the blockers' and features' hot paths.
//! - **Numeric comparators** ([`numeric`]): exact, absolute/relative
//!   difference, year gaps.
//! - **Phonetic encoding** ([`phonetic`]): American Soundex.
//!
//! ```
//! use em_text::tokenize::{QgramTokenizer, Tokenizer};
//! use em_text::set::jaccard;
//!
//! let t = QgramTokenizer::new(3);
//! let a = t.tokenize("corn fungicide");
//! let b = t.tokenize("corn fungicides");
//! assert!(jaccard(&a, &b) > 0.8);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod intern;
pub mod normalize;
pub mod numeric;
pub mod phonetic;
pub mod seq;
pub mod set;
pub mod tokenize;

pub use corpus::TfIdfCorpus;
pub use intern::{TokenCache, TokenCorpus};
pub use normalize::Normalizer;
pub use tokenize::{
    AlphanumericTokenizer, DelimiterTokenizer, QgramTokenizer, Tokenizer, WhitespaceTokenizer,
};
