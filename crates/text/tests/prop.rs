//! Property-based tests for similarity-measure invariants, plus the
//! equivalence suite pinning the similarity-kernel engine ([`em_text::seq`],
//! [`em_text::myers`]) bit-for-bit against the retained reference
//! implementations in [`em_text::naive`].

use em_text::seq::*;
use em_text::set::*;
use em_text::tokenize::{QgramTokenizer, Tokenizer, WhitespaceTokenizer};
use em_text::{naive, KernelScratch, TfIdfCorpus};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{0,8}").expect("valid regex")
}

/// Arbitrary strings drawn from a mixed ASCII / multi-byte alphabet, with
/// lengths up to 150 chars — past the 64-char Myers block boundary and into
/// the multi-block path. Repeated letters keep match/transposition cases hot.
fn any_string() -> impl Strategy<Value = String> {
    let alphabet = vec![
        'a', 'b', 'c', 'a', 'b', 'z', '0', '9', ' ', '-', 'é', 'ß', '日', '本', '語', '🦀',
    ];
    proptest::collection::vec(proptest::sample::select(alphabet), 0..150)
        .prop_map(|cs| cs.into_iter().collect())
}

fn words() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::string::string_regex("[a-z]{1,5}").expect("valid regex"),
        0..8,
    )
}

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Levenshtein is bounded by the longer length; zero iff equal.
    #[test]
    fn levenshtein_bounds(a in word(), b in word()) {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        prop_assert_eq!(d == 0, a == b);
    }

    /// Damerau never exceeds plain Levenshtein and is still symmetric.
    #[test]
    fn damerau_le_levenshtein(a in word(), b in word()) {
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
    }

    /// Jaro and Jaro-Winkler stay in [0,1]; JW only boosts (never lowers)
    /// and equals 1 exactly on identical strings.
    #[test]
    fn jaro_family_bounds(a in word(), b in word()) {
        let j = jaro(&a, &b);
        let jw = jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((0.0..=1.0).contains(&jw));
        prop_assert!(jw >= j - 1e-12);
        if a == b {
            prop_assert!((jw - 1.0).abs() < 1e-12);
        }
    }

    /// Set measures live in [0,1]; identity scores 1; overlap coefficient
    /// dominates Jaccard which is dominated by Dice.
    #[test]
    fn set_measure_ordering(a in words(), b in words()) {
        let jac = jaccard(&a, &b);
        let oc = overlap_coefficient(&a, &b);
        let dc = dice(&a, &b);
        let cs = cosine(&a, &b);
        for v in [jac, oc, dc, cs] {
            prop_assert!((0.0..=1.0).contains(&v), "{} out of range", v);
        }
        prop_assert!(oc >= jac - 1e-12);
        prop_assert!(dc >= jac - 1e-12);
        prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        // cosine >= jaccard (AM-GM on set sizes)
        prop_assert!(cs >= jac - 1e-12);
    }

    /// overlap_size is consistent with the definition of Jaccard.
    #[test]
    fn overlap_size_consistent(a in words(), b in words()) {
        let inter = overlap_size(&a, &b) as f64;
        let ua: std::collections::HashSet<&str> = a.iter().map(String::as_str).collect();
        let ub: std::collections::HashSet<&str> = b.iter().map(String::as_str).collect();
        let union = (ua.len() + ub.len()) as f64 - inter;
        if union > 0.0 {
            prop_assert!((jaccard(&a, &b) - inter / union).abs() < 1e-12);
        }
    }

    /// Q-gram tokenization of a string of length >= q yields exactly
    /// len - q + 1 grams, each of length q, and they reconstruct the string.
    #[test]
    fn qgram_structure(s in proptest::string::string_regex("[a-z]{3,20}").unwrap()) {
        let q = 3usize;
        let grams = QgramTokenizer::new(q).tokenize(&s);
        let n = s.chars().count();
        prop_assert_eq!(grams.len(), n - q + 1);
        for g in &grams {
            prop_assert_eq!(g.chars().count(), q);
        }
        // overlapping reconstruction: gram i+1 shares q-1 chars with gram i
        for w in grams.windows(2) {
            prop_assert_eq!(&w[0][1..], &w[1][..w[1].len() - 1]);
        }
    }

    /// Whitespace tokens never contain whitespace and join back into a
    /// whitespace-normal form of the input.
    #[test]
    fn whitespace_tokens_clean(s in proptest::string::string_regex("[a-z ]{0,30}").unwrap()) {
        let toks = WhitespaceTokenizer.tokenize(&s);
        for t in &toks {
            prop_assert!(!t.chars().any(char::is_whitespace));
            prop_assert!(!t.is_empty());
        }
        prop_assert_eq!(toks.join(" "), s.split_whitespace().collect::<Vec<_>>().join(" "));
    }

    /// TF-IDF cosine is symmetric, bounded, and 1 on identical docs.
    #[test]
    fn tfidf_cosine_properties(docs in proptest::collection::vec(words(), 1..6), a in words(), b in words()) {
        let corpus = TfIdfCorpus::from_documents(docs.iter().map(Vec::as_slice));
        let ab = corpus.cosine(&a, &b);
        let ba = corpus.cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        prop_assert!((corpus.cosine(&a, &a) - 1.0).abs() < 1e-9);
    }

    /// Monge-Elkan with an exact inner function is bounded and reaches 1 on
    /// identical token lists.
    #[test]
    fn monge_elkan_bounds(a in words(), b in words()) {
        let inner = |x: &str, y: &str| f64::from(x == y);
        let m = monge_elkan(&a, &b, inner);
        prop_assert!((0.0..=1.0).contains(&m));
        prop_assert!((monge_elkan(&a, &a, inner) - 1.0).abs() < 1e-12);
    }

    /// Myers bit-parallel Levenshtein equals the reference DP on arbitrary
    /// strings, including multi-byte unicode and >64-char (multi-block) ones.
    #[test]
    fn myers_matches_naive_levenshtein(a in any_string(), b in any_string()) {
        prop_assert_eq!(levenshtein(&a, &b), naive::levenshtein(&a, &b));
    }

    /// Every engine kernel is bit-identical to its naive reference — f64
    /// results compared via `to_bits`, not a tolerance.
    #[test]
    fn engine_kernels_match_naive(a in any_string(), b in any_string()) {
        prop_assert_eq!(levenshtein_sim(&a, &b).to_bits(), naive::levenshtein_sim(&a, &b).to_bits());
        prop_assert_eq!(damerau_levenshtein(&a, &b), naive::damerau_levenshtein(&a, &b));
        prop_assert_eq!(jaro(&a, &b).to_bits(), naive::jaro(&a, &b).to_bits());
        prop_assert_eq!(jaro_winkler(&a, &b).to_bits(), naive::jaro_winkler(&a, &b).to_bits());
        prop_assert_eq!(
            needleman_wunsch(&a, &b, 0.5).to_bits(),
            naive::needleman_wunsch(&a, &b, 0.5).to_bits()
        );
        prop_assert_eq!(
            needleman_wunsch_sim(&a, &b).to_bits(),
            naive::needleman_wunsch_sim(&a, &b).to_bits()
        );
        prop_assert_eq!(
            smith_waterman(&a, &b, 0.5).to_bits(),
            naive::smith_waterman(&a, &b, 0.5).to_bits()
        );
        prop_assert_eq!(
            smith_waterman_sim(&a, &b).to_bits(),
            naive::smith_waterman_sim(&a, &b).to_bits()
        );
        prop_assert_eq!(
            affine_gap(&a, &b, 1.0, 0.5).to_bits(),
            naive::affine_gap(&a, &b, 1.0, 0.5).to_bits()
        );
    }

    /// The explicit-scratch variants agree with the thread-local wrappers —
    /// a reused arena never leaks state between calls.
    #[test]
    fn with_scratch_matches_wrappers(a in any_string(), b in any_string()) {
        let mut s = KernelScratch::new();
        // Warm the scratch with a first pass, then compare a second pass so
        // any stale-buffer bug would surface.
        let _ = levenshtein_with(&mut s, &a, &b);
        prop_assert_eq!(levenshtein_with(&mut s, &a, &b), levenshtein(&a, &b));
        prop_assert_eq!(
            levenshtein_sim_with(&mut s, &a, &b).to_bits(),
            levenshtein_sim(&a, &b).to_bits()
        );
        prop_assert_eq!(damerau_levenshtein_with(&mut s, &a, &b), damerau_levenshtein(&a, &b));
        prop_assert_eq!(jaro_with(&mut s, &a, &b).to_bits(), jaro(&a, &b).to_bits());
        prop_assert_eq!(
            jaro_winkler_with(&mut s, &a, &b).to_bits(),
            jaro_winkler(&a, &b).to_bits()
        );
        prop_assert_eq!(
            needleman_wunsch_with(&mut s, &a, &b, 1.0).to_bits(),
            needleman_wunsch(&a, &b, 1.0).to_bits()
        );
        prop_assert_eq!(
            needleman_wunsch_sim_with(&mut s, &a, &b).to_bits(),
            needleman_wunsch_sim(&a, &b).to_bits()
        );
        prop_assert_eq!(
            smith_waterman_with(&mut s, &a, &b, 1.0).to_bits(),
            smith_waterman(&a, &b, 1.0).to_bits()
        );
        prop_assert_eq!(
            smith_waterman_sim_with(&mut s, &a, &b).to_bits(),
            smith_waterman_sim(&a, &b).to_bits()
        );
        prop_assert_eq!(
            affine_gap_with(&mut s, &a, &b, 1.0, 0.5).to_bits(),
            affine_gap(&a, &b, 1.0, 0.5).to_bits()
        );
    }
}

/// Known-value pins cross-checked against the naive reference module, so a
/// regression in *either* implementation trips the suite.
#[test]
fn known_values_pinned_against_naive() {
    assert_eq!(naive::jaro("MARTHA", "MARHTA").to_bits(), 0.9444444444444445f64.to_bits());
    assert_eq!(jaro("MARTHA", "MARHTA").to_bits(), 0.9444444444444445f64.to_bits());
    assert_eq!(naive::jaro("DIXON", "DICKSONX").to_bits(), 0.7666666666666666f64.to_bits());
    assert_eq!(jaro("DIXON", "DICKSONX").to_bits(), 0.7666666666666666f64.to_bits());
    assert_eq!(naive::jaro_winkler("MARTHA", "MARHTA").to_bits(), 0.9611111111111111f64.to_bits());
    assert_eq!(jaro_winkler("MARTHA", "MARHTA").to_bits(), 0.9611111111111111f64.to_bits());
    assert_eq!(naive::damerau_levenshtein("ca", "ac"), 1);
    assert_eq!(damerau_levenshtein("ca", "ac"), 1);
    assert_eq!(naive::damerau_levenshtein("a cat", "a abct"), 3);
    assert_eq!(damerau_levenshtein("a cat", "a abct"), 3);
}
