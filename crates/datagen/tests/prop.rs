//! Property-based tests: scenario invariants hold across random
//! configurations and seeds, not just the two presets.

use em_datagen::{Oracle, OracleConfig, PairView, Scenario, ScenarioConfig};
use em_estimate::Label;
use proptest::prelude::*;

fn config() -> impl Strategy<Value = ScenarioConfig> {
    (
        any::<u64>(),      // seed
        10usize..60,       // awards
        0usize..20,        // extra awards
        0.0f64..1.0,       // frac_federal
        0.2f64..0.8,       // p_in_usda
        0.0f64..0.3,       // p_generic
    )
        .prop_map(|(seed, n_awards, n_extra, frac_federal, p_in_usda, p_generic)| {
            let mut c = ScenarioConfig::small().with_seed(seed);
            c.n_awards = n_awards;
            c.n_extra_awards = n_extra;
            // keep USDA big enough for matched records (≤ ~1.2 per project)
            c.n_usda = (n_awards + n_extra) * 2 + 20;
            c.n_employees = n_awards.max(1) * 4;
            c.frac_federal = frac_federal;
            c.p_in_usda = p_in_usda;
            c.p_generic_title = p_generic;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants hold for arbitrary configurations: schemas,
    /// key integrity, truth referential integrity, extra-batch bookkeeping.
    #[test]
    fn scenario_invariants(cfg in config()) {
        let s = Scenario::generate(cfg.clone()).unwrap();
        prop_assert_eq!(s.award_agg.n_rows(), cfg.n_awards);
        prop_assert_eq!(s.extra_award_agg.n_rows(), cfg.n_extra_awards);
        prop_assert_eq!(s.usda.n_rows(), cfg.n_usda);
        prop_assert_eq!(s.usda.n_cols(), 78);

        // Keys.
        s.all_award_agg().check_key("UniqueAwardNumber").unwrap();
        s.usda.check_key("AccessionNumber").unwrap();

        // Truth references real identifiers only, and never exceeds the
        // USDA row count… per award side it can (one-to-many), but every
        // accession appears at most once as a match target of some award?
        // No — many-to-one is impossible by construction: each USDA record
        // belongs to exactly one project.
        let mut seen_accessions = std::collections::HashSet::new();
        for (_, acc) in s.truth.iter() {
            prop_assert!(seen_accessions.insert(acc.to_string()),
                "accession {acc} matched by two awards at generation time");
        }

        // Every extra award is marked, and only extras are marked.
        for r in s.extra_award_agg.iter() {
            prop_assert!(s.truth.is_extra_award(r.str("UniqueAwardNumber").unwrap()));
        }
        for r in s.award_agg.iter() {
            prop_assert!(!s.truth.is_extra_award(r.str("UniqueAwardNumber").unwrap()));
        }
        prop_assert!(s.truth.n_matches_initial() <= s.truth.len());
    }

    /// The oracle never settles a true match as No, never settles a clear
    /// (dissimilar-title) non-match as Yes, and is deterministic.
    #[test]
    fn oracle_soundness(cfg in config()) {
        let s = Scenario::generate(cfg).unwrap();
        let oracle = Oracle::new(&s.truth, OracleConfig::default());
        // Probe with synthetic views across both regimes.
        let mut checked = 0;
        for (award, acc) in s.truth.iter().take(20) {
            let v = PairView {
                award_number: award,
                accession: acc,
                left_title: "SOIL NUTRIENT CYCLING STUDY",
                right_title: "Soil Nutrient Cycling Study",
                right_award_number: None,
                right_project_number: None,
            };
            let l1 = oracle.label(&v);
            prop_assert_ne!(l1, Label::No, "true match settled as No");
            prop_assert_eq!(l1, oracle.label(&v), "non-deterministic label");
            checked += 1;
        }
        prop_assert!(checked > 0 || s.truth.is_empty());

        let non = PairView {
            award_number: "10.999 NOT-A-REAL-AWARD",
            accession: "999999",
            left_title: "Alpha Beta Gamma",
            right_title: "Completely Different Words Here",
            right_award_number: None,
            right_project_number: None,
        };
        prop_assert_eq!(oracle.label(&non), Label::No);
    }

    /// Generation is a pure function of the config.
    #[test]
    fn generation_deterministic(cfg in config()) {
        let a = Scenario::generate(cfg.clone()).unwrap();
        let b = Scenario::generate(cfg).unwrap();
        prop_assert_eq!(a.usda.rows(), b.usda.rows());
        prop_assert_eq!(a.award_agg.rows(), b.award_agg.rows());
        prop_assert_eq!(a.truth, b.truth);
    }
}
