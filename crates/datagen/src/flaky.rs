//! A fault-injecting wrapper around the labeling oracle.
//!
//! The paper's labeling rota was a shared cloud tool that only one person
//! could use at a time, plus spreadsheets and email — in production terms,
//! an *unreliable external dependency*. [`FlakyOracle`] models that: it
//! wraps an [`Oracle`] and makes individual labeling calls fail with
//! transient faults (unavailability, timeouts) at configured rates, fully
//! deterministically in the fault seed and the pair identity, so that
//! retry/backoff logic upstream can be tested without real flakiness.
//!
//! [`LabelSource`] is the abstraction the pipeline labels through: the
//! plain [`Oracle`] implements it infallibly; [`FlakyOracle`] implements it
//! with injected faults.

use crate::oracle::{pair_draw, Oracle, PairView};
use em_estimate::Label;
use std::collections::BTreeSet;
use std::fmt;

/// A transient fault raised by a labeling backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleFault {
    /// The labeling service was unreachable for this attempt.
    Unavailable {
        /// Zero-based attempt index that failed.
        attempt: u32,
    },
    /// The labeling call timed out for this attempt.
    Timeout {
        /// Zero-based attempt index that failed.
        attempt: u32,
    },
}

impl fmt::Display for OracleFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFault::Unavailable { attempt } => {
                write!(f, "oracle unavailable (attempt {attempt})")
            }
            OracleFault::Timeout { attempt } => write!(f, "oracle timeout (attempt {attempt})"),
        }
    }
}

impl std::error::Error for OracleFault {}

/// A labeling backend: produces `(first_pass, settled)` labels for a pair,
/// or a transient [`OracleFault`] the caller may retry.
///
/// `attempt` is the zero-based retry attempt; deterministic backends fault
/// (or not) as a pure function of the pair identity and the attempt, so
/// identical runs observe identical fault sequences.
pub trait LabelSource {
    /// Tries to label one pair. `first_round` selects the mistake-prone
    /// initial behaviour for the first element of the returned tuple.
    fn try_label(
        &self,
        view: &PairView<'_>,
        first_round: bool,
        attempt: u32,
    ) -> Result<(Label, Label), OracleFault>;
}

impl LabelSource for Oracle<'_> {
    fn try_label(
        &self,
        view: &PairView<'_>,
        first_round: bool,
        _attempt: u32,
    ) -> Result<(Label, Label), OracleFault> {
        let settled = self.label(view);
        let first = if first_round { self.label_initial(view) } else { settled };
        Ok((first, settled))
    }
}

/// A monotonic ledger of oracle label spending.
///
/// Active-learning loops query the oracle in batches across many rounds;
/// the budget they report (and that label-efficiency curves are plotted
/// against) must count each *distinct* pair exactly once, no matter how
/// many transient faults were retried on the way. Counters only ever grow;
/// there is no reset — a fresh experiment starts a fresh ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelBudget {
    queries: u64,
    retries: u64,
    degraded: u64,
    distinct: BTreeSet<(String, String)>,
}

impl LabelBudget {
    /// An empty ledger.
    pub fn new() -> LabelBudget {
        LabelBudget::default()
    }

    /// Labeling calls that produced an answer (including degraded ones).
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Faulted attempts that were retried.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Pairs whose retries ran out and degraded to `Unsure`.
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    /// Distinct `(award, accession)` pairs ever submitted — the number a
    /// label-efficiency curve charges, independent of retries and
    /// re-submissions.
    pub fn distinct_pairs(&self) -> usize {
        self.distinct.len()
    }

    /// Iterates the distinct charged `(award, accession)` pairs in sorted
    /// order — the serialization order for checkpoints.
    pub fn distinct_iter(&self) -> impl Iterator<Item = &(String, String)> {
        self.distinct.iter()
    }

    /// Reconstructs a ledger from checkpointed counters, for crash/resume.
    /// A ledger restored from a checkpoint and one carried live through the
    /// same rounds are equal, so resumed runs keep charging correctly.
    pub fn restore(
        queries: u64,
        retries: u64,
        degraded: u64,
        distinct: impl IntoIterator<Item = (String, String)>,
    ) -> LabelBudget {
        LabelBudget { queries, retries, degraded, distinct: distinct.into_iter().collect() }
    }

    /// Records one resolved labeling call. `retries` is the number of
    /// faulted attempts spent before resolution; `degraded` marks a pair
    /// whose retry budget ran out.
    pub(crate) fn record(&mut self, award: &str, accession: &str, retries: u64, degraded: bool) {
        self.queries += 1;
        self.retries += retries;
        if degraded {
            self.degraded += 1;
        }
        self.distinct.insert((award.to_string(), accession.to_string()));
    }
}

/// Fault rates of a [`FlakyOracle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyConfig {
    /// Seed for the per-(pair, attempt) fault draws, independent of the
    /// oracle's labeling seed.
    pub seed: u64,
    /// P(the service is unavailable) per attempt.
    pub p_unavailable: f64,
    /// P(the call times out) per attempt (drawn after availability).
    pub p_timeout: f64,
    /// Attempts at or beyond this index never fault — bounds the worst
    /// case so a retrying caller always terminates.
    pub max_fault_attempts: u32,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig { seed: 0xFA01, p_unavailable: 0.1, p_timeout: 0.05, max_fault_attempts: 8 }
    }
}

/// Fault-draw channels, offset well past the [`Oracle`]'s own channels.
const CH_UNAVAILABLE: u32 = 101;
const CH_TIMEOUT: u32 = 102;

/// An [`Oracle`] behind an unreliable transport.
#[derive(Debug, Clone)]
pub struct FlakyOracle<'a> {
    inner: Oracle<'a>,
    cfg: FlakyConfig,
}

impl<'a> FlakyOracle<'a> {
    /// Wraps an oracle with the given fault rates.
    pub fn new(inner: Oracle<'a>, cfg: FlakyConfig) -> FlakyOracle<'a> {
        FlakyOracle { inner, cfg }
    }

    /// The wrapped oracle (faultless access, e.g. for ground-truth checks).
    pub fn inner(&self) -> &Oracle<'a> {
        &self.inner
    }

    /// Whether the given attempt on the given pair faults, and how.
    /// Deterministic: the same `(pair, attempt)` always answers the same.
    pub fn fault_for(&self, view: &PairView<'_>, attempt: u32) -> Option<OracleFault> {
        if attempt >= self.cfg.max_fault_attempts {
            return None;
        }
        // Mix the attempt into the accession side so each retry gets an
        // independent draw while staying a pure function of its inputs.
        let key = format!("{}#{attempt}", view.accession);
        if pair_draw(self.cfg.seed, view.award_number, &key, CH_UNAVAILABLE)
            < self.cfg.p_unavailable
        {
            return Some(OracleFault::Unavailable { attempt });
        }
        if pair_draw(self.cfg.seed, view.award_number, &key, CH_TIMEOUT) < self.cfg.p_timeout {
            return Some(OracleFault::Timeout { attempt });
        }
        None
    }
}

impl FlakyOracle<'_> {
    /// Labels a batch of pairs, retrying each pair's transient faults up to
    /// `max_retries` extra attempts. Every pair resolves: when retries run
    /// out the label degrades to `Unsure` — the safe "don't know" of this
    /// domain. Spending is recorded in `budget`: one query per view, one
    /// retry per faulted-then-retried attempt, and each distinct
    /// `(award, accession)` pair at most once across the ledger's lifetime.
    ///
    /// Deterministic: faults are a pure function of `(pair, attempt)`, so
    /// identical batches against identical configs resolve identically.
    pub fn label_batch(
        &self,
        views: &[PairView<'_>],
        first_round: bool,
        max_retries: u32,
        budget: &mut LabelBudget,
    ) -> Vec<(Label, Label)> {
        let mut out = Vec::with_capacity(views.len());
        for view in views {
            let mut attempt = 0u32;
            let mut retries = 0u64;
            let resolved = loop {
                match self.try_label(view, first_round, attempt) {
                    Ok(labels) => break Some(labels),
                    Err(_fault) if attempt < max_retries => {
                        retries += 1;
                        attempt += 1;
                    }
                    Err(_fault) => break None,
                }
            };
            let degraded = resolved.is_none();
            budget.record(view.award_number, view.accession, retries, degraded);
            out.push(resolved.unwrap_or((Label::Unsure, Label::Unsure)));
        }
        out
    }
}

impl LabelSource for FlakyOracle<'_> {
    fn try_label(
        &self,
        view: &PairView<'_>,
        first_round: bool,
        attempt: u32,
    ) -> Result<(Label, Label), OracleFault> {
        if let Some(fault) = self.fault_for(view, attempt) {
            return Err(fault);
        }
        self.inner.try_label(view, first_round, attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::GroundTruth;
    use crate::OracleConfig;

    fn view<'a>(award: &'a str, acc: &'a str) -> PairView<'a> {
        PairView {
            award_number: award,
            accession: acc,
            left_title: "Corn Fungicide Guidelines",
            right_title: "Corn Fungicide Guidelines",
            right_award_number: None,
            right_project_number: None,
        }
    }

    #[test]
    fn plain_oracle_never_faults() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        for attempt in 0..20 {
            assert!(o.try_label(&view("10.200 W1", "100"), false, attempt).is_ok());
        }
    }

    #[test]
    fn faults_are_deterministic_and_attempt_dependent() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        let cfg = FlakyConfig { p_unavailable: 0.5, p_timeout: 0.2, ..Default::default() };
        let flaky = FlakyOracle::new(o, cfg);
        let mut faulted = 0;
        for i in 0..50 {
            let award = format!("10.200 W{i}");
            let v = view(&award, "100");
            let a = flaky.fault_for(&v, 0);
            let b = flaky.fault_for(&v, 0);
            assert_eq!(a, b, "fault draw must be deterministic");
            if a.is_some() {
                faulted += 1;
            }
        }
        assert!(faulted > 10, "with p=0.5+0.2 most pairs should fault, got {faulted}");
        assert!(faulted < 50, "some pairs must succeed first try");
    }

    #[test]
    fn fault_cap_guarantees_progress() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        let cfg = FlakyConfig {
            p_unavailable: 1.0,
            p_timeout: 1.0,
            max_fault_attempts: 3,
            ..Default::default()
        };
        let flaky = FlakyOracle::new(o, cfg);
        let v = view("10.200 W1", "100");
        for attempt in 0..3 {
            assert!(flaky.try_label(&v, false, attempt).is_err());
        }
        assert!(flaky.try_label(&v, false, 3).is_ok(), "attempts past the cap must succeed");
    }

    #[test]
    fn batch_budget_counts_distinct_pairs_once() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        let flaky = FlakyOracle::new(
            o,
            FlakyConfig { p_unavailable: 0.3, p_timeout: 0.1, ..Default::default() },
        );
        let awards: Vec<String> = (0..20).map(|i| format!("10.200 W{i}")).collect();
        let views: Vec<PairView<'_>> = awards.iter().map(|a| view(a, "100")).collect();
        let mut budget = LabelBudget::new();
        let first = flaky.label_batch(&views, false, 8, &mut budget);
        assert_eq!(first.len(), 20);
        assert_eq!(budget.queries(), 20);
        assert_eq!(budget.distinct_pairs(), 20);
        assert!(budget.retries() > 0, "these rates must exercise the retry path");
        assert_eq!(budget.degraded(), 0, "8 retries beat the default fault cap");
        // Re-submitting the same batch spends more queries and retries but
        // no new distinct pairs — AL rounds charge each label exactly once.
        let second = flaky.label_batch(&views, false, 8, &mut budget);
        assert_eq!(first, second, "batch labeling must be deterministic");
        assert_eq!(budget.queries(), 40);
        assert_eq!(budget.distinct_pairs(), 20);
    }

    #[test]
    fn batch_budget_accounts_degradation_under_total_failure() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        // Always faulting and never capped: every pair exhausts its retries.
        let flaky = FlakyOracle::new(
            o,
            FlakyConfig {
                p_unavailable: 1.0,
                p_timeout: 1.0,
                max_fault_attempts: u32::MAX,
                ..Default::default()
            },
        );
        let awards: Vec<String> = (0..5).map(|i| format!("10.200 W{i}")).collect();
        let views: Vec<PairView<'_>> = awards.iter().map(|a| view(a, "100")).collect();
        let mut budget = LabelBudget::new();
        let labels = flaky.label_batch(&views, false, 3, &mut budget);
        assert!(labels.iter().all(|&l| l == (Label::Unsure, Label::Unsure)));
        assert_eq!(budget.queries(), 5);
        assert_eq!(budget.retries(), 15, "3 retries per pair before degrading");
        assert_eq!(budget.degraded(), 5);
        assert_eq!(budget.distinct_pairs(), 5);
    }

    #[test]
    fn batch_ledger_is_monotonic() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        let flaky = FlakyOracle::new(
            o,
            FlakyConfig { p_unavailable: 0.5, p_timeout: 0.2, ..Default::default() },
        );
        let mut budget = LabelBudget::new();
        let mut last = (0u64, 0u64, 0usize);
        for i in 0..10 {
            let award = format!("10.200 W{i}");
            let views = [view(&award, "100")];
            flaky.label_batch(&views, false, 8, &mut budget);
            let now = (budget.queries(), budget.retries(), budget.distinct_pairs());
            assert!(now.0 > last.0, "queries must strictly grow");
            assert!(now.1 >= last.1 && now.2 >= last.2, "ledger must never shrink");
            last = now;
        }
        assert_eq!(last.0, 10);
        assert_eq!(last.2, 10);
    }

    #[test]
    fn successful_attempts_match_the_inner_oracle() {
        let mut t = GroundTruth::default();
        t.add_match("10.200 2008-11111-22222", "200001");
        let o = Oracle::new(&t, OracleConfig::default());
        let flaky = FlakyOracle::new(o.clone(), FlakyConfig::default());
        let v = view("10.200 2008-11111-22222", "200001");
        // Find a non-faulting attempt (the cap guarantees one exists).
        let attempt = (0..).find(|&a| flaky.fault_for(&v, a).is_none()).unwrap();
        assert_eq!(
            flaky.try_label(&v, false, attempt).unwrap(),
            o.try_label(&v, false, attempt).unwrap()
        );
    }
}
