//! A fault-injecting wrapper around the labeling oracle.
//!
//! The paper's labeling rota was a shared cloud tool that only one person
//! could use at a time, plus spreadsheets and email — in production terms,
//! an *unreliable external dependency*. [`FlakyOracle`] models that: it
//! wraps an [`Oracle`] and makes individual labeling calls fail with
//! transient faults (unavailability, timeouts) at configured rates, fully
//! deterministically in the fault seed and the pair identity, so that
//! retry/backoff logic upstream can be tested without real flakiness.
//!
//! [`LabelSource`] is the abstraction the pipeline labels through: the
//! plain [`Oracle`] implements it infallibly; [`FlakyOracle`] implements it
//! with injected faults.

use crate::oracle::{pair_draw, Oracle, PairView};
use em_estimate::Label;
use std::fmt;

/// A transient fault raised by a labeling backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleFault {
    /// The labeling service was unreachable for this attempt.
    Unavailable {
        /// Zero-based attempt index that failed.
        attempt: u32,
    },
    /// The labeling call timed out for this attempt.
    Timeout {
        /// Zero-based attempt index that failed.
        attempt: u32,
    },
}

impl fmt::Display for OracleFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFault::Unavailable { attempt } => {
                write!(f, "oracle unavailable (attempt {attempt})")
            }
            OracleFault::Timeout { attempt } => write!(f, "oracle timeout (attempt {attempt})"),
        }
    }
}

impl std::error::Error for OracleFault {}

/// A labeling backend: produces `(first_pass, settled)` labels for a pair,
/// or a transient [`OracleFault`] the caller may retry.
///
/// `attempt` is the zero-based retry attempt; deterministic backends fault
/// (or not) as a pure function of the pair identity and the attempt, so
/// identical runs observe identical fault sequences.
pub trait LabelSource {
    /// Tries to label one pair. `first_round` selects the mistake-prone
    /// initial behaviour for the first element of the returned tuple.
    fn try_label(
        &self,
        view: &PairView<'_>,
        first_round: bool,
        attempt: u32,
    ) -> Result<(Label, Label), OracleFault>;
}

impl LabelSource for Oracle<'_> {
    fn try_label(
        &self,
        view: &PairView<'_>,
        first_round: bool,
        _attempt: u32,
    ) -> Result<(Label, Label), OracleFault> {
        let settled = self.label(view);
        let first = if first_round { self.label_initial(view) } else { settled };
        Ok((first, settled))
    }
}

/// Fault rates of a [`FlakyOracle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyConfig {
    /// Seed for the per-(pair, attempt) fault draws, independent of the
    /// oracle's labeling seed.
    pub seed: u64,
    /// P(the service is unavailable) per attempt.
    pub p_unavailable: f64,
    /// P(the call times out) per attempt (drawn after availability).
    pub p_timeout: f64,
    /// Attempts at or beyond this index never fault — bounds the worst
    /// case so a retrying caller always terminates.
    pub max_fault_attempts: u32,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig { seed: 0xFA01, p_unavailable: 0.1, p_timeout: 0.05, max_fault_attempts: 8 }
    }
}

/// Fault-draw channels, offset well past the [`Oracle`]'s own channels.
const CH_UNAVAILABLE: u32 = 101;
const CH_TIMEOUT: u32 = 102;

/// An [`Oracle`] behind an unreliable transport.
#[derive(Debug, Clone)]
pub struct FlakyOracle<'a> {
    inner: Oracle<'a>,
    cfg: FlakyConfig,
}

impl<'a> FlakyOracle<'a> {
    /// Wraps an oracle with the given fault rates.
    pub fn new(inner: Oracle<'a>, cfg: FlakyConfig) -> FlakyOracle<'a> {
        FlakyOracle { inner, cfg }
    }

    /// The wrapped oracle (faultless access, e.g. for ground-truth checks).
    pub fn inner(&self) -> &Oracle<'a> {
        &self.inner
    }

    /// Whether the given attempt on the given pair faults, and how.
    /// Deterministic: the same `(pair, attempt)` always answers the same.
    pub fn fault_for(&self, view: &PairView<'_>, attempt: u32) -> Option<OracleFault> {
        if attempt >= self.cfg.max_fault_attempts {
            return None;
        }
        // Mix the attempt into the accession side so each retry gets an
        // independent draw while staying a pure function of its inputs.
        let key = format!("{}#{attempt}", view.accession);
        if pair_draw(self.cfg.seed, view.award_number, &key, CH_UNAVAILABLE)
            < self.cfg.p_unavailable
        {
            return Some(OracleFault::Unavailable { attempt });
        }
        if pair_draw(self.cfg.seed, view.award_number, &key, CH_TIMEOUT) < self.cfg.p_timeout {
            return Some(OracleFault::Timeout { attempt });
        }
        None
    }
}

impl LabelSource for FlakyOracle<'_> {
    fn try_label(
        &self,
        view: &PairView<'_>,
        first_round: bool,
        attempt: u32,
    ) -> Result<(Label, Label), OracleFault> {
        if let Some(fault) = self.fault_for(view, attempt) {
            return Err(fault);
        }
        self.inner.try_label(view, first_round, attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::GroundTruth;
    use crate::OracleConfig;

    fn view<'a>(award: &'a str, acc: &'a str) -> PairView<'a> {
        PairView {
            award_number: award,
            accession: acc,
            left_title: "Corn Fungicide Guidelines",
            right_title: "Corn Fungicide Guidelines",
            right_award_number: None,
            right_project_number: None,
        }
    }

    #[test]
    fn plain_oracle_never_faults() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        for attempt in 0..20 {
            assert!(o.try_label(&view("10.200 W1", "100"), false, attempt).is_ok());
        }
    }

    #[test]
    fn faults_are_deterministic_and_attempt_dependent() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        let cfg = FlakyConfig { p_unavailable: 0.5, p_timeout: 0.2, ..Default::default() };
        let flaky = FlakyOracle::new(o, cfg);
        let mut faulted = 0;
        for i in 0..50 {
            let award = format!("10.200 W{i}");
            let v = view(&award, "100");
            let a = flaky.fault_for(&v, 0);
            let b = flaky.fault_for(&v, 0);
            assert_eq!(a, b, "fault draw must be deterministic");
            if a.is_some() {
                faulted += 1;
            }
        }
        assert!(faulted > 10, "with p=0.5+0.2 most pairs should fault, got {faulted}");
        assert!(faulted < 50, "some pairs must succeed first try");
    }

    #[test]
    fn fault_cap_guarantees_progress() {
        let t = GroundTruth::default();
        let o = Oracle::new(&t, OracleConfig::default());
        let cfg = FlakyConfig {
            p_unavailable: 1.0,
            p_timeout: 1.0,
            max_fault_attempts: 3,
            ..Default::default()
        };
        let flaky = FlakyOracle::new(o, cfg);
        let v = view("10.200 W1", "100");
        for attempt in 0..3 {
            assert!(flaky.try_label(&v, false, attempt).is_err());
        }
        assert!(flaky.try_label(&v, false, 3).is_ok(), "attempts past the cap must succeed");
    }

    #[test]
    fn successful_attempts_match_the_inner_oracle() {
        let mut t = GroundTruth::default();
        t.add_match("10.200 2008-11111-22222", "200001");
        let o = Oracle::new(&t, OracleConfig::default());
        let flaky = FlakyOracle::new(o.clone(), FlakyConfig::default());
        let v = view("10.200 2008-11111-22222", "200001");
        // Find a non-faulting attempt (the cap guarantees one exists).
        let attempt = (0..).find(|&a| flaky.fault_for(&v, a).is_none()).unwrap();
        assert_eq!(
            flaky.try_label(&v, false, attempt).unwrap(),
            o.try_label(&v, false, attempt).unwrap()
        );
    }
}
