//! The synthetic UMETRICS/USDA scenario generator.
//!
//! Builds the seven raw tables of Figure 2 (with the paper's schemas and —
//! for the matching-relevant tables — the paper's row counts), a withheld
//! "extra data" batch of award records (Section 10), and the hidden
//! [`GroundTruth`]. Every noise channel the case study's decisions hinge on
//! is reproduced with a calibrated rate:
//!
//! - federal `YYYY-#####-#####` vs state `WIS#####` identifier formats,
//! - USDA rows with missing award numbers (the M2 title-matching cases),
//! - UMETRICS titles in UPPER CASE vs USDA Title Case (the Section 9
//!   case-sensitivity bug), plus occasional typos,
//! - generic shared titles ("Lab Supplies"),
//! - one-to-many annual USDA records per award,
//! - USDA filler rows cloning a real title plus an `NC/NRSP` multistate
//!   marker (discrepancy D1) or belonging to other universities.

use crate::config::ScenarioConfig;
use crate::truth::GroundTruth;
use crate::vocab;
use em_table::{DataType, Date, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A generated scenario: raw tables plus hidden truth.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `UMETRICSAwardAggMatching` — the initial batch.
    pub award_agg: Table,
    /// The withheld award records delivered later (same schema).
    pub extra_award_agg: Table,
    /// `UMETRICSEmployeesMatching`.
    pub employees: Table,
    /// `UMETRICSObjectCodesMatching`.
    pub object_codes: Table,
    /// `UMETRICSOrgUnitsMatching`.
    pub org_units: Table,
    /// `UMETRICSSubAwardMatching`.
    pub sub_awards: Table,
    /// `UMETRICSVendorMatching`.
    pub vendors: Table,
    /// `USDAAwardMatching` (78 columns).
    pub usda: Table,
    /// The hidden true match set.
    pub truth: GroundTruth,
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
}

/// One project in the ground-truth universe (internal).
struct Project {
    unique_award_number: String,
    state_number: String,
    federal_number: Option<String>,
    title: String,
    director: (String, String), // (first, last)
    employees: Vec<(String, String)>,
    start: Date,
    end: Date,
    org_unit: usize,
    account: i64,
    in_usda: bool,
    n_usda_records: usize,
    extra: bool,
}

#[allow(clippy::disallowed_methods)] // data generation, not a matching hot path
fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(first) => first.to_uppercase().collect::<String>() + &c.as_str().to_lowercase(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Swaps two adjacent characters in one word — the small-typo channel.
fn inject_typo(s: &str, rng: &mut StdRng) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.is_empty() {
        return s.to_string();
    }
    let wi = rng.gen_range(0..words.len());
    let mut out = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        if i == wi && w.chars().count() >= 3 {
            let chars: Vec<char> = w.chars().collect();
            let k = rng.gen_range(0..chars.len() - 1);
            let mut c = chars.clone();
            c.swap(k, k + 1);
            out.push(c.into_iter().collect::<String>());
        } else {
            out.push(w.to_string());
        }
    }
    out.join(" ")
}

fn random_date(rng: &mut StdRng, year_lo: i32, year_hi: i32) -> Date {
    Date::new(
        rng.gen_range(year_lo..=year_hi),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28),
    )
    .expect("in-range components")
}

fn shift_years(d: Date, years: i32) -> Date {
    Date::new(d.year + years, d.month, d.day).expect("month/day unchanged")
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn person(rng: &mut StdRng) -> (String, String) {
    (
        pick(rng, vocab::FIRST_NAMES).to_string(),
        pick(rng, vocab::LAST_NAMES).to_string(),
    )
}

fn full_name(p: &(String, String)) -> String {
    format!("{} {}", p.0, p.1)
}

/// USDA-style director rendering: `Last, F.` (Figure 4's
/// "Kermicle, J.L" / "Hammer, R" flavor).
fn director_name(p: &(String, String)) -> String {
    format!("{}, {}.", p.1, p.0.chars().next().unwrap_or('X'))
}

fn gen_title(rng: &mut StdRng) -> String {
    let n = rng.gen_range(4..=9);
    let mut words = Vec::with_capacity(n);
    let mut used = std::collections::HashSet::new();
    while words.len() < n {
        let w = pick(rng, vocab::TITLE_WORDS);
        if used.insert(w) {
            words.push(w);
        }
    }
    title_case(&words.join(" "))
}

fn gen_projects(cfg: &ScenarioConfig, rng: &mut StdRng) -> Vec<Project> {
    let n = cfg.n_projects();
    let mut projects = Vec::with_capacity(n);
    for idx in 0..n {
        let start = random_date(rng, 1997, 2012);
        let duration = rng.gen_range(1..=5);
        let is_federal = rng.gen_bool(cfg.frac_federal);
        let state_number = format!("WIS{:05}", 1000 + idx);
        let federal_number = is_federal.then(|| {
            format!(
                "{}-{:05}-{:05}",
                start.year,
                rng.gen_range(10_000..100_000),
                rng.gen_range(10_000..100_000)
            )
        });
        let program_code = format!("10.{:03}", rng.gen_range(100..400));
        let suffix = federal_number.clone().unwrap_or_else(|| state_number.clone());
        let generic = rng.gen_bool(cfg.p_generic_title);
        let title = if generic {
            pick(rng, vocab::GENERIC_TITLES).to_string()
        } else {
            gen_title(rng)
        };
        let director = person(rng);
        // Stale staff lists: the director is sometimes absent from the
        // employees table, weakening the name-overlap matching signal (the
        // paper's M3 hint is real but unreliable).
        let mut employees = if rng.gen_bool(cfg.p_director_unlisted) {
            vec![person(rng)]
        } else {
            vec![director.clone()]
        };
        for _ in 0..rng.gen_range(0..6) {
            employees.push(person(rng));
        }
        let in_usda = rng.gen_bool(cfg.p_in_usda);
        let roll: f64 = rng.gen();
        let n_usda_records = if roll < cfg.p_three_records {
            3
        } else if roll < cfg.p_three_records + cfg.p_two_records {
            2
        } else {
            1
        };
        projects.push(Project {
            unique_award_number: format!("{program_code} {suffix}"),
            state_number,
            federal_number,
            title,
            director,
            employees,
            start,
            end: shift_years(start, duration),
            org_unit: rng.gen_range(0..vocab::ORG_UNITS.len()),
            account: 500_000 + idx as i64,
            in_usda,
            n_usda_records,
            extra: false, // assigned below
        });
    }
    // Sibling projects: a continuation re-awarded under a new number —
    // same title, contemporaneous dates, different identifiers. Cross-pairs
    // between a project and its sibling's USDA records are the D2 false
    // positives the negative rule later repairs.
    for i in 1..n {
        if rng.gen_bool(cfg.p_sibling_title) {
            let (title, year) = (projects[i - 1].title.clone(), projects[i - 1].start.year);
            let month = rng.gen_range(1..=12);
            let day = rng.gen_range(1..=28);
            let duration = rng.gen_range(1..=5);
            let p = &mut projects[i];
            p.title = title;
            p.start = Date::new(year, month, day).expect("in-range components");
            p.end = shift_years(p.start, duration);
        }
    }
    // Withhold a random batch as the Section 10 "extra data".
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for &i in order.iter().take(cfg.n_extra_awards) {
        projects[i].extra = true;
    }
    projects
}

fn award_agg_schema() -> Schema {
    Schema::of(&[
        ("UniqueAwardNumber", DataType::Str),
        ("AwardTitle", DataType::Str),
        ("FundingSource", DataType::Str),
        ("FirstTransDate", DataType::Date),
        ("LastTransDate", DataType::Date),
        ("RecipientAccountNumber", DataType::Int),
        ("TotalOverheadCharged", DataType::Float),
        ("TotalExpenditures", DataType::Float),
        ("NumberOfTransactions", DataType::Int),
        ("DataFileYearEarliest", DataType::Int),
        ("DataFileYearLatest", DataType::Int),
        ("SubOrgUnit", DataType::Str),
        ("CampusID", DataType::Int),
    ])
}

fn award_agg_row(p: &Project, rng: &mut StdRng) -> Vec<Value> {
    let expenditures = rng.gen_range(20_000.0..2_000_000.0f64).round();
    vec![
        Value::Str(p.unique_award_number.clone()),
        Value::Str(p.title.to_uppercase()), // UMETRICS titles arrive in caps
        Value::Str("USDA".to_string()),
        Value::Date(p.start),
        Value::Date(p.end),
        Value::Int(p.account),
        Value::Float((expenditures * 0.3).round()),
        Value::Float(expenditures),
        Value::Int(rng.gen_range(5..400)),
        Value::Int(p.start.year as i64),
        Value::Int(p.end.year as i64),
        Value::Str(vocab::ORG_UNITS[p.org_unit].to_string()),
        Value::Int(1001),
    ]
}

fn usda_schema() -> Schema {
    let mut cols = vec![
        ("AccessionNumber".to_string(), DataType::Int),
        ("ProjectTitle".to_string(), DataType::Str),
        ("SponsoringAgency".to_string(), DataType::Str),
        ("FundingMechanism".to_string(), DataType::Str),
        ("AwardNumber".to_string(), DataType::Str),
        ("InitialAwardFiscalYear".to_string(), DataType::Int),
        ("RecipientOrganization".to_string(), DataType::Str),
        ("RecipientDUNS".to_string(), DataType::Int),
        ("ProjectDirector".to_string(), DataType::Str),
        ("MultistateProjectNumber".to_string(), DataType::Str),
        ("ProjectNumber".to_string(), DataType::Str),
        ("ProjectStartDate".to_string(), DataType::Date),
        ("ProjectEndDate".to_string(), DataType::Date),
        ("ProjectStartFiscalYear".to_string(), DataType::Int),
        (
            "Financial: USDA Contracts, Grants, Coop Agmt".to_string(),
            DataType::Float,
        ),
    ];
    for i in cols.len()..78 {
        cols.push((format!("ExtraCol{:02}", i - 14), DataType::Float));
    }
    Schema::new(
        cols.into_iter()
            .map(|(n, t)| em_table::Column::new(n, t))
            .collect(),
    )
    .expect("unique generated names")
}

/// Pads a meaningful prefix out to 77 values (78 columns minus the
/// AccessionNumber the builder prepends) with sparse filler — mostly
/// missing, occasionally a small amount.
fn pad_usda(mut row: Vec<Value>, rng: &mut StdRng) -> Vec<Value> {
    while row.len() < 77 {
        if rng.gen_bool(0.1) {
            row.push(Value::Float(rng.gen_range(0.0..10_000.0f64).round()));
        } else {
            row.push(Value::Null);
        }
    }
    row
}

struct UsdaBuilder {
    table: Table,
    next_accession: i64,
}

impl UsdaBuilder {
    fn new() -> UsdaBuilder {
        UsdaBuilder { table: Table::new("USDAAwardMatching", usda_schema()), next_accession: 200_000 }
    }

    fn push(&mut self, row: Vec<Value>) -> i64 {
        let acc = self.next_accession;
        self.next_accession += 1;
        let mut full = vec![Value::Int(acc)];
        full.extend(row);
        self.table.push_row(full).expect("generated row fits schema");
        acc
    }
}

/// Builds the 14 meaningful values (after AccessionNumber) of a matched
/// USDA record for `p`, annual-report index `year_idx`.
fn usda_match_row(
    p: &Project,
    year_idx: i32,
    cfg: &ScenarioConfig,
    rng: &mut StdRng,
) -> Vec<Value> {
    let award_number = match &p.federal_number {
        Some(f) if rng.gen_bool(cfg.p_federal_award_present) => Value::Str(f.clone()),
        _ => Value::Null,
    };
    let project_number = if rng.gen_bool(cfg.p_project_number_present) {
        if rng.gen_bool(cfg.p_wrong_project_number) {
            // Clerical error: a different (comparable) state number. The
            // negative rule will flip this true match — the small recall
            // cost the paper observed in Section 12.
            Value::Str(format!("WIS{:05}", 80_000 + rng.gen_range(0..9_999)))
        } else {
            Value::Str(p.state_number.clone())
        }
    } else {
        Value::Null
    };
    let mut title = title_case(&p.title);
    if rng.gen_bool(cfg.p_usda_title_garbled) {
        // Clerk entered an unrelated description: this match escapes every
        // title-based blocking scheme and is only recoverable through the
        // Section 10 project-number rule.
        title = gen_title(rng);
    } else if rng.gen_bool(cfg.p_title_typo) {
        title = inject_typo(&title, rng);
    }
    // USDA reporting dates drift within the award year (Figure 5 shows
    // FirstTransDate 10/1/08 against ProjectStartDate 8/15/08), so the
    // generated dates agree on the year but not the day.
    let base = shift_years(p.start, year_idx);
    let start = Date::new(base.year, rng.gen_range(1..=12), rng.gen_range(1..=28))
        .expect("in-range components");
    let end_base = shift_years(p.end, year_idx.min(0));
    let end = Date::new(end_base.year, rng.gen_range(1..=12), rng.gen_range(1..=28))
        .expect("in-range components");
    let mechanism = if p.federal_number.is_some() {
        "Federal Formula/Competitive"
    } else {
        "State Funding"
    };
    let row = vec![
        Value::Str(title),
        Value::Str("State Agricultural Experiment Station".to_string()),
        Value::Str(mechanism.to_string()),
        award_number,
        Value::Int(start.year as i64),
        Value::Str(vocab::UW_RECIPIENT.to_string()),
        Value::Int(80_811_530),
        if rng.gen_bool(cfg.p_director_missing) {
            Value::Null
        } else {
            Value::Str(director_name(&p.director))
        },
        Value::Null, // MultistateProjectNumber
        project_number,
        Value::Date(start),
        Value::Date(end),
        Value::Int(start.year as i64),
        Value::Float(rng.gen_range(10_000.0..900_000.0f64).round()),
    ];
    pad_usda(row, rng)
}

/// A filler USDA row: either a multistate clone of a real title (the D1
/// trap) or an unrelated row from another university.
fn usda_filler_row(
    projects: &[Project],
    cfg: &ScenarioConfig,
    filler_idx: usize,
    rng: &mut StdRng,
) -> Vec<Value> {
    let is_clone = rng.gen_bool(cfg.p_filler_multistate_clone) && !projects.is_empty();
    let mut start = random_date(rng, 1997, 2012);
    let (title, recipient, project_number, multistate) = if is_clone {
        let src = &projects[rng.gen_range(0..projects.len())];
        let marker = pick(rng, vocab::MULTISTATE_MARKERS);
        // Multistate annual reports are contemporaneous with the cloned
        // project, so the date features cannot separate the pair either.
        start = Date::new(src.start.year, rng.gen_range(1..=12), rng.gen_range(1..=28))
            .expect("in-range components");
        (
            format!("{} {}", title_case(&src.title), marker),
            vocab::UW_RECIPIENT.to_string(),
            // A *different* state number: comparable-but-different with the
            // cloned project's — exactly what the negative rule catches.
            Value::Str(format!("WIS{:05}", 90_000 + filler_idx)),
            Value::Str(marker.to_string()),
        )
    } else {
        let federal = rng.gen_bool(0.5);
        let number = if federal {
            Value::Str(format!(
                "{}-{:05}-{:05}",
                start.year,
                rng.gen_range(10_000..100_000),
                rng.gen_range(10_000..100_000)
            ))
        } else {
            Value::Null
        };
        let _ = number; // filler award numbers assigned below
        (
            gen_title(rng),
            pick(rng, vocab::OTHER_RECIPIENTS).to_string(),
            Value::Null,
            Value::Null,
        )
    };
    // Filler rows may carry their own (non-matching) federal numbers.
    let award_number = if !is_clone && rng.gen_bool(0.4) {
        Value::Str(format!(
            "{}-{:05}-{:05}",
            start.year,
            rng.gen_range(10_000..100_000),
            rng.gen_range(10_000..100_000)
        ))
    } else {
        Value::Null
    };
    let director = person(rng);
    let row = vec![
        Value::Str(title),
        Value::Str("State Agricultural Experiment Station".to_string()),
        Value::Str("State Funding".to_string()),
        award_number,
        Value::Int(start.year as i64),
        Value::Str(recipient),
        Value::Int(rng.gen_range(10_000_000..99_999_999)),
        Value::Str(director_name(&director)),
        multistate,
        project_number,
        Value::Date(start),
        Value::Date(shift_years(start, rng.gen_range(1..5))),
        Value::Int(start.year as i64),
        Value::Float(rng.gen_range(10_000.0..900_000.0f64).round()),
    ];
    pad_usda(row, rng)
}

fn gen_employees(projects: &[&Project], cfg: &ScenarioConfig, rng: &mut StdRng) -> Table {
    let schema = Schema::of(&[
        ("UniqueAwardNumber", DataType::Str),
        ("PeriodStartDate", DataType::Date),
        ("PeriodEndDate", DataType::Date),
        ("RecipientAccountNumber", DataType::Int),
        ("DeidentifiedEmployeeIdNumber", DataType::Int),
        ("FullName", DataType::Str),
        ("OccupationalClassification", DataType::Str),
        ("JobTitle", DataType::Str),
        ("ObjectCode", DataType::Int),
        ("SOCCode", DataType::Str),
        ("FteStatus", DataType::Float),
        ("ProportionOfEarningsAllocated", DataType::Float),
        ("DataFileYear", DataType::Int),
    ]);
    let jobs = ["Professor", "Scientist", "Research Assistant", "Postdoc", "Technician"];
    let mut t = Table::new("UMETRICSEmployeesMatching", schema);
    let n_proj = projects.len();
    for r in 0..cfg.n_employees {
        let p = &projects[r % n_proj];
        let emp = &p.employees[(r / n_proj) % p.employees.len()];
        t.push_row(vec![
            Value::Str(p.unique_award_number.clone()),
            Value::Date(p.start),
            Value::Date(p.end),
            Value::Int(p.account),
            Value::Int(10_000 + r as i64),
            Value::Str(full_name(emp)),
            Value::Str("Research".to_string()),
            Value::Str(jobs[r % jobs.len()].to_string()),
            Value::Int(1100 + (r % 40) as i64),
            Value::Str(format!("19-{:04}", 1000 + (r % 90))),
            Value::Float(1.0),
            Value::Float(rng.gen_range(0.05..1.0f64)),
            Value::Int(p.start.year as i64),
        ])
        .expect("row fits schema");
    }
    t
}

fn gen_object_codes(cfg: &ScenarioConfig) -> Table {
    let schema = Schema::of(&[
        ("ObjectCode", DataType::Int),
        ("ObjectCodeText", DataType::Str),
        ("DataFileYear", DataType::Int),
    ]);
    let texts = ["Salaries", "Fringe Benefits", "Supplies", "Travel", "Equipment", "Tuition"];
    let mut t = Table::new("UMETRICSObjectCodesMatching", schema);
    for i in 0..cfg.n_object_codes {
        t.push_row(vec![
            Value::Int(1000 + i as i64),
            Value::Str(texts[i % texts.len()].to_string()),
            Value::Int(2008 + (i % 8) as i64),
        ])
        .expect("row fits schema");
    }
    t
}

fn gen_org_units(cfg: &ScenarioConfig) -> Table {
    let schema = Schema::of(&[
        ("CampusId", DataType::Int),
        ("SubOrgUnit", DataType::Str),
        ("CampusName", DataType::Str),
        ("SubOrgUnitName", DataType::Str),
        ("DataFileYear", DataType::Int),
    ]);
    let mut t = Table::new("UMETRICSOrgUnitsMatching", schema);
    for i in 0..cfg.n_org_units {
        let unit = vocab::ORG_UNITS[i % vocab::ORG_UNITS.len()];
        t.push_row(vec![
            Value::Int(1001),
            Value::Str(format!("{unit}-{}", i / vocab::ORG_UNITS.len())),
            Value::Str("UW-Madison".to_string()),
            Value::Str(unit.to_string()),
            Value::Int(2008 + (i % 8) as i64),
        ])
        .expect("row fits schema");
    }
    t
}

fn gen_sub_awards(projects: &[Project], cfg: &ScenarioConfig, rng: &mut StdRng) -> Table {
    let schema = Schema::of(&[
        ("UniqueAwardNumber", DataType::Str),
        ("Address", DataType::Str),
        ("BldgName", DataType::Str),
        ("City", DataType::Str),
        ("Country", DataType::Str),
        ("DUNS", DataType::Int),
        ("DomesticZipCode", DataType::Str),
        ("EIN", DataType::Int),
        ("ForeignZipCode", DataType::Str),
        ("ObjectCode", DataType::Int),
        ("OrgName", DataType::Str),
        ("OrganizationID", DataType::Int),
        ("POBox", DataType::Str),
        ("PeriodEndDate", DataType::Date),
        ("PeriodStartDate", DataType::Date),
        ("RecipientAccountNumber", DataType::Int),
        ("SrtName", DataType::Str),
        ("SrtNumber", DataType::Str),
        ("State", DataType::Str),
        ("StrName", DataType::Str),
        ("StrNumber", DataType::Str),
        ("SubAwardPaymentAmount", DataType::Float),
        ("DataFileYear", DataType::Int),
    ]);
    let mut t = Table::new("UMETRICSSubAwardMatching", schema);
    for r in 0..cfg.n_subawards {
        let p = &projects[r % projects.len()];
        t.push_row(vec![
            Value::Str(p.unique_award_number.clone()),
            Value::Str(format!("{} University Ave", 100 + r % 900)),
            Value::Null,
            Value::Str("Madison".to_string()),
            Value::Str("USA".to_string()),
            Value::Int(rng.gen_range(100_000_000..999_999_999)),
            Value::Str("53706".to_string()),
            Value::Int(rng.gen_range(10_000_000..99_999_999)),
            Value::Null,
            Value::Int(1200 + (r % 30) as i64),
            Value::Str(pick(rng, vocab::VENDOR_ORGS).to_string()),
            Value::Int(7000 + r as i64),
            Value::Null,
            Value::Date(p.end),
            Value::Date(p.start),
            Value::Int(p.account),
            Value::Null,
            Value::Null,
            Value::Str("WI".to_string()),
            Value::Str("University Ave".to_string()),
            Value::Str(format!("{}", 100 + r % 900)),
            Value::Float(rng.gen_range(1_000.0..250_000.0f64).round()),
            Value::Int(p.start.year as i64),
        ])
        .expect("row fits schema");
    }
    t
}

fn gen_vendors(projects: &[Project], cfg: &ScenarioConfig, rng: &mut StdRng) -> Table {
    let schema = Schema::of(&[
        ("UniqueAwardNumber", DataType::Str),
        ("PeriodStartDate", DataType::Date),
        ("PeriodEndDate", DataType::Date),
        ("RecipientAccountNumber", DataType::Int),
        ("ObjectCode", DataType::Int),
        ("OrganizationID", DataType::Int),
        ("EIN", DataType::Int),
        ("DUNS", DataType::Int),
        ("VendorPaymentAmount", DataType::Float),
        ("OrgName", DataType::Str),
        ("POBox", DataType::Str),
        ("BldgNum", DataType::Str),
        ("StrNumber", DataType::Str),
        ("StrName", DataType::Str),
        ("Address", DataType::Str),
        ("City", DataType::Str),
        ("State", DataType::Str),
        ("DomesticZipCode", DataType::Str),
        ("ForeignZipCode", DataType::Str),
        ("Country", DataType::Str),
        ("DataFileYear", DataType::Int),
    ]);
    let mut t = Table::new("UMETRICSVendorMatching", schema);
    for r in 0..cfg.n_vendors {
        let p = &projects[r % projects.len()];
        t.push_row(vec![
            Value::Str(p.unique_award_number.clone()),
            Value::Date(p.start),
            Value::Date(p.end),
            Value::Int(p.account),
            Value::Int(1300 + (r % 25) as i64),
            Value::Int(8000 + r as i64),
            Value::Int(rng.gen_range(10_000_000..99_999_999)),
            // Vendor DUNS deliberately disjoint from USDA recipient DUNS
            // (Section 6 step 3 found no value overlap).
            Value::Int(rng.gen_range(100_000_000..500_000_000)),
            Value::Float(rng.gen_range(50.0..60_000.0f64).round()),
            Value::Str(pick(rng, vocab::VENDOR_ORGS).to_string()),
            Value::Null,
            Value::Null,
            Value::Str(format!("{}", 1 + r % 999)),
            Value::Str("Main St".to_string()),
            Value::Str(format!("{} Main St", 1 + r % 999)),
            Value::Str("Madison".to_string()),
            Value::Str("WI".to_string()),
            Value::Str("53703".to_string()),
            Value::Null,
            Value::Str("USA".to_string()),
            Value::Int(p.start.year as i64),
        ])
        .expect("row fits schema");
    }
    t
}

impl Scenario {
    /// Generates a scenario from a configuration. Deterministic in
    /// `config.seed`.
    pub fn generate(config: ScenarioConfig) -> Result<Scenario, String> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let projects = gen_projects(&config, &mut rng);

        // UMETRICS award tables (initial + extra).
        let mut award_agg = Table::new("UMETRICSAwardAggMatching", award_agg_schema());
        let mut extra = Table::new("UMETRICSAwardAggExtra", award_agg_schema());
        for p in &projects {
            let row = award_agg_row(p, &mut rng);
            if p.extra {
                extra.push_row(row).expect("row fits schema");
            } else {
                award_agg.push_row(row).expect("row fits schema");
            }
        }

        // USDA: matched records first, then filler to the configured size.
        let mut truth = GroundTruth::default();
        let mut usda = UsdaBuilder::new();
        for p in &projects {
            if p.extra {
                truth.mark_extra(&p.unique_award_number);
            }
            if !p.in_usda {
                continue;
            }
            for year_idx in 0..p.n_usda_records {
                let row = usda_match_row(p, year_idx as i32, &config, &mut rng);
                let acc = usda.push(row);
                truth.add_match(&p.unique_award_number, &acc.to_string());
            }
        }
        let matched = usda.table.n_rows();
        if matched > config.n_usda {
            return Err(format!(
                "config produces {matched} matched USDA records but n_usda = {}",
                config.n_usda
            ));
        }
        for filler_idx in 0..config.n_usda - matched {
            let row = usda_filler_row(&projects, &config, filler_idx, &mut rng);
            usda.push(row);
        }

        Ok(Scenario {
            award_agg,
            extra_award_agg: extra,
            employees: {
                // Only the delivered (non-extra) awards have staff rows:
                // the initial delivery is internally consistent, and the
                // Section 10 extra batch arrives without employee data.
                let delivered: Vec<&Project> = projects.iter().filter(|p| !p.extra).collect();
                gen_employees(&delivered, &config, &mut rng)
            },
            object_codes: gen_object_codes(&config),
            org_units: gen_org_units(&config),
            sub_awards: gen_sub_awards(&projects, &config, &mut rng),
            vendors: gen_vendors(&projects, &config, &mut rng),
            usda: usda.table,
            truth,
            config,
        })
    }

    /// The initial and extra award tables combined (what UMETRICS should
    /// have delivered in the first place).
    pub fn all_award_agg(&self) -> Table {
        let mut t = self.award_agg.union(&self.extra_award_agg).expect("same schema");
        t.set_name("UMETRICSAwardAggAll");
        t
    }

    /// Writes the seven raw tables plus the extra batch as CSV files into
    /// `dir` (created if absent) — the "Google Drive folder" form the raw
    /// data arrives in. Returns the file paths written.
    pub fn write_csv_dir(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Vec<std::path::PathBuf>, em_table::TableError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(em_table::TableError::from)?;
        let mut written = Vec::new();
        for t in self.raw_tables().into_iter().chain([&self.extra_award_agg]) {
            let path = dir.join(format!("{}.csv", t.name()));
            em_table::csv::write_path(t, &path)?;
            written.push(path);
        }
        Ok(written)
    }

    /// All seven raw tables with their paper names, for Figure 2.
    pub fn raw_tables(&self) -> Vec<&Table> {
        vec![
            &self.award_agg,
            &self.employees,
            &self.object_codes,
            &self.org_units,
            &self.sub_awards,
            &self.vendors,
            &self.usda,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario::generate(ScenarioConfig::small()).unwrap()
    }

    #[test]
    fn row_and_column_counts_match_config() {
        let s = small();
        let c = &s.config;
        assert_eq!(s.award_agg.n_rows(), c.n_awards);
        assert_eq!(s.extra_award_agg.n_rows(), c.n_extra_awards);
        assert_eq!(s.usda.n_rows(), c.n_usda);
        assert_eq!(s.award_agg.n_cols(), 13);
        assert_eq!(s.employees.n_cols(), 13);
        assert_eq!(s.object_codes.n_cols(), 3);
        assert_eq!(s.org_units.n_cols(), 5);
        assert_eq!(s.sub_awards.n_cols(), 23);
        assert_eq!(s.vendors.n_cols(), 21);
        assert_eq!(s.usda.n_cols(), 78);
    }

    #[test]
    fn award_numbers_are_keys() {
        let s = small();
        s.award_agg.check_key("UniqueAwardNumber").unwrap();
        s.usda.check_key("AccessionNumber").unwrap();
        s.all_award_agg().check_key("UniqueAwardNumber").unwrap();
    }

    #[test]
    fn employees_reference_awards() {
        let s = small();
        s.employees
            .check_foreign_key("UniqueAwardNumber", &s.award_agg, "UniqueAwardNumber")
            .unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Scenario::generate(ScenarioConfig::small().with_seed(5)).unwrap();
        let b = Scenario::generate(ScenarioConfig::small().with_seed(5)).unwrap();
        assert_eq!(a.usda.rows(), b.usda.rows());
        assert_eq!(a.award_agg.rows(), b.award_agg.rows());
        assert_eq!(a.truth, b.truth);
        let c = Scenario::generate(ScenarioConfig::small().with_seed(6)).unwrap();
        assert_ne!(a.usda.rows(), c.usda.rows());
    }

    #[test]
    fn truth_pairs_reference_real_rows() {
        let s = small();
        let all = s.all_award_agg();
        let awards: std::collections::HashSet<String> = all
            .iter()
            .filter_map(|r| r.str("UniqueAwardNumber").map(str::to_string))
            .collect();
        let accessions: std::collections::HashSet<String> = s
            .usda
            .iter()
            .map(|r| r.get("AccessionNumber").unwrap().render())
            .collect();
        assert!(!s.truth.is_empty());
        for (award, acc) in s.truth.iter() {
            assert!(awards.contains(award), "unknown award {award}");
            assert!(accessions.contains(acc), "unknown accession {acc}");
        }
    }

    #[test]
    fn both_identifier_formats_present() {
        let s = small();
        let nums: Vec<String> = s
            .award_agg
            .iter()
            .filter_map(|r| r.str("UniqueAwardNumber").map(str::to_string))
            .collect();
        assert!(nums.iter().any(|n| n.contains("WIS")), "no state awards");
        assert!(
            nums.iter().any(|n| n.split(' ').nth(1).is_some_and(|s| s.contains('-'))),
            "no federal awards"
        );
    }

    #[test]
    fn some_usda_rows_missing_award_number() {
        let s = small();
        let missing = s
            .usda
            .iter()
            .filter(|r| r.get("AwardNumber").unwrap().is_null())
            .count();
        assert!(missing > 0, "M2 cases require missing award numbers");
        assert!(missing < s.usda.n_rows(), "some award numbers must be present");
    }

    #[test]
    fn umetrics_titles_uppercase_usda_titlecase() {
        let s = small();
        let u_title = s.award_agg.get(0, "AwardTitle").unwrap().render();
        assert_eq!(u_title, u_title.to_uppercase());
        let any_mixed = s.usda.iter().any(|r| {
            let t = r.get("ProjectTitle").unwrap().render();
            t != t.to_uppercase() && !t.is_empty()
        });
        assert!(any_mixed, "USDA titles should be mixed-case");
    }

    #[test]
    fn one_to_many_matches_exist() {
        let s = Scenario::generate(ScenarioConfig::small().with_seed(3)).unwrap();
        let has_multi = s
            .truth
            .iter()
            .any(|(award, _)| s.truth.accessions_for(award).len() > 1);
        assert!(has_multi, "expected some one-to-many award→accession matches");
    }

    #[test]
    fn extra_awards_marked_and_sized() {
        let s = small();
        let n_extra_marked = s
            .extra_award_agg
            .iter()
            .filter(|r| {
                s.truth
                    .is_extra_award(r.str("UniqueAwardNumber").unwrap_or(""))
            })
            .count();
        assert_eq!(n_extra_marked, s.config.n_extra_awards);
    }

    #[test]
    fn multistate_markers_appear_in_filler() {
        let s = Scenario::generate(ScenarioConfig::paper()).unwrap();
        let cloned = s
            .usda
            .iter()
            .filter(|r| {
                r.str("ProjectTitle")
                    .is_some_and(|t| t.contains("NC-") || t.contains("NRSP-"))
            })
            .count();
        assert!(cloned > 0, "D1 multistate clones missing");
    }

    #[test]
    fn paper_scale_generates() {
        let s = Scenario::generate(ScenarioConfig::paper()).unwrap();
        assert_eq!(s.award_agg.n_rows(), 1336);
        assert_eq!(s.extra_award_agg.n_rows(), 496);
        assert_eq!(s.usda.n_rows(), 1915);
        // healthy match density: several hundred true pairs
        assert!(s.truth.len() > 500, "only {} true matches", s.truth.len());
        assert!(s.truth.len() < 1915);
    }

    #[test]
    fn csv_dir_round_trip() {
        let s = Scenario::generate(ScenarioConfig::small().with_seed(8)).unwrap();
        let dir = std::env::temp_dir().join(format!("em-scenario-{}", std::process::id()));
        let written = s.write_csv_dir(&dir).unwrap();
        assert_eq!(written.len(), 8);
        let reloaded = em_table::csv::read_path(&written[0]).unwrap();
        assert_eq!(reloaded.n_rows(), s.award_agg.n_rows());
        assert_eq!(reloaded.n_cols(), s.award_agg.n_cols());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn title_case_and_typo_helpers() {
        assert_eq!(title_case("SWAMP DODDER ecology"), "Swamp Dodder Ecology");
        let mut rng = StdRng::seed_from_u64(1);
        let t = inject_typo("hello world", &mut rng);
        assert_eq!(t.len(), "hello world".len());
        assert_ne!(t, "hello world");
    }
}
