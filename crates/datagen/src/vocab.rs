//! Vocabulary pools for the synthetic UMETRICS/USDA generator: agricultural
//! research terms (so generated titles look like Figure 3/4's), person
//! names, organization units, and the generic titles that made title-based
//! labeling hard in the case study.

/// Topic words for award titles, drawn from the flavor of the real examples
/// ("GENETIC ORGANIZATION AND EPIGENETIC SILENCING OF MAIZE R GENES",
/// "Development of IPM-Based Corn Fungicide Guidelines…").
pub const TITLE_WORDS: &[&str] = &[
    "genetic", "organization", "epigenetic", "silencing", "maize", "genes", "development",
    "ipm", "based", "corn", "fungicide", "guidelines", "north", "central", "states",
    "changing", "location", "extent", "wildland", "urban", "interface", "swamp", "dodder",
    "cuscuta", "applied", "ecology", "management", "carrot", "production", "soil",
    "nutrient", "cycling", "dairy", "cattle", "grazing", "systems", "wisconsin",
    "cranberry", "pest", "resistance", "breeding", "potato", "blight", "forecasting",
    "models", "economic", "impacts", "rural", "communities", "water", "quality",
    "watershed", "nitrogen", "phosphorus", "runoff", "cover", "crops", "rotation", "yield",
    "stability", "organic", "transition", "weed", "suppression", "biological", "control",
    "aphid", "predators", "pollinator", "habitat", "restoration", "prairie",
    "agroforestry", "silvopasture", "market", "analysis", "specialty", "vegetable",
    "growers", "food", "safety", "listeria", "cheese", "aging", "microbial",
    "fermentation", "bovine", "genomics", "selection", "drought", "tolerance", "wheat",
    "cultivar", "evaluation", "trials", "tillage", "conservation", "carbon",
    "sequestration", "pasture", "forage", "alfalfa", "harvest", "storage", "losses",
    "apple", "orchard", "canopy", "irrigation", "scheduling", "sensor", "networks",
    "precision", "agriculture", "remote", "sensing", "landscape", "climate", "adaptation",
    "extension", "outreach", "education", "farmer", "cooperatives", "hydrology",
    "sediment", "stream", "buffer", "strips", "grassland", "bird", "nesting", "survey",
    "monitoring", "protocols", "invasive", "species", "detection", "emerald", "ash",
    "borer", "gypsy", "moth", "quarantine", "compliance", "biosecurity", "swine", "herd",
    "health", "vaccination", "strategies", "poultry", "litter", "amendments", "compost",
    "standards", "certification", "hemp", "fiber", "processing", "ginseng", "shade",
    "structures", "maple", "syrup", "tapping", "efficiency", "hops", "trellis", "design",
    "barley", "malting", "varieties", "oat", "rust", "screening", "soybean", "cyst",
    "nematode", "sampling", "density", "mapping", "spatial", "variability", "zone",
    "fertility", "recommendations", "manure", "digestate", "biogas", "methane",
    "emissions", "mitigation", "greenhouse", "gas", "inventory", "renewable", "energy",
    "onfarm", "solar", "wind", "feasibility", "assessments", "labor", "availability",
    "immigration", "policy", "wage", "trends", "succession", "planning", "beginning",
    "farmers", "land", "access", "credit", "insurance", "participation", "risk",
    "perception", "behavioral", "experiments", "auction", "mechanisms", "supply", "chain",
    "traceability", "blockchain", "pilot", "consumer", "preferences", "willingness",
    "premiums", "grassfed", "beef", "branding", "direct", "marketing", "farmstand",
    "agritourism", "revenue", "diversification", "value", "added", "artisan", "creamery",
    "incubator", "kitchens",
];

/// Generic, non-discriminative titles — the "Lab Supplies" problem of
/// Section 5: exact title equality on these says nothing about matching.
pub const GENERIC_TITLES: &[&str] = &[
    "Lab Supplies",
    "Field Equipment",
    "Research Support",
    "Graduate Student Support",
    "Summer Research",
    "Departmental Research",
];

/// First names for employees and project directors.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas",
    "Karen", "Charles", "Nancy", "Paul", "Lisa", "Mark", "Betty", "Donald", "Helen", "George",
    "Sandra", "Kenneth", "Donna", "Steven", "Carol", "Edward", "Ruth", "Brian", "Sharon",
    "Ronald", "Michelle", "Anthony", "Laura", "Kevin", "Sarah", "Jason", "Kimberly",
];

/// Last names for employees and project directors.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
    "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young",
    "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell", "Carter",
    "Kermicle", "Hammer", "Esker", "Colquhoun",
];

/// Sub-organization unit names (colleges/departments).
pub const ORG_UNITS: &[&str] = &[
    "Agronomy", "Horticulture", "Plant Pathology", "Entomology", "Soil Science",
    "Dairy Science", "Animal Sciences", "Agricultural Economics", "Food Science",
    "Forest and Wildlife Ecology", "Biological Systems Engineering", "Bacteriology",
];

/// Vendor organization names.
pub const VENDOR_ORGS: &[&str] = &[
    "Midwest Scientific Supply", "Badger Lab Instruments", "Prairie Seed Co",
    "Great Lakes Chemical", "Capitol Office Products", "Dane County Implements",
    "Northern Greenhouse Systems", "Mendota Analytical", "Arlington Field Services",
    "Wisconsin Irrigation Works",
];

/// Recipient organizations for USDA rows that do not belong to UW-Madison
/// (the unmatched filler rows).
pub const OTHER_RECIPIENTS: &[&str] = &[
    "SAES - MICHIGAN STATE UNIVERSITY",
    "SAES - UNIVERSITY OF MINNESOTA",
    "SAES - IOWA STATE UNIVERSITY",
    "SAES - UNIVERSITY OF ILLINOIS",
    "SAES - PURDUE UNIVERSITY",
];

/// The UW-Madison recipient string used on matching USDA rows (Figure 4).
pub const UW_RECIPIENT: &str = "SAES - UNIVERSITY OF WISCONSIN";

/// Multistate project markers appended to some USDA-only titles — the
/// `NC/NRSP` suffixes behind discrepancy D1 in Section 8.
pub const MULTISTATE_MARKERS: &[&str] = &["NC-1234", "NC-507", "NRSP-8", "NC-140", "NRSP-3"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_distinct() {
        assert!(TITLE_WORDS.len() >= 100);
        assert!(FIRST_NAMES.len() >= 40);
        assert!(LAST_NAMES.len() >= 40);
        let mut words = TITLE_WORDS.to_vec();
        words.sort_unstable();
        let before = words.len();
        words.dedup();
        assert_eq!(words.len(), before, "duplicate title words");
    }

    #[test]
    fn generic_titles_are_short() {
        for t in GENERIC_TITLES {
            assert!(t.split_whitespace().count() <= 3, "{t} is not short");
        }
    }

    #[test]
    fn markers_look_multistate() {
        for m in MULTISTATE_MARKERS {
            assert!(m.starts_with("NC") || m.starts_with("NRSP"));
        }
    }
}
