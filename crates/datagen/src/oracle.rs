//! The simulated domain-expert labeling team.
//!
//! The UMETRICS team labeled sampled pairs `Yes` / `No` / `Unsure`, made
//! correctable first-round mistakes (Section 8: one M1-satisfying pair
//! labeled non-match; ~21 similar-title pairs labeled "a mix of match,
//! non-match, and primarily unsures"), and settled discrepancy classes D1-D3
//! after discussion. [`Oracle`] reproduces those behaviours on top of the
//! hidden ground truth:
//!
//! - [`Oracle::label`] — the *settled* labels (after all the paper's
//!   cross-checking and discussion rounds).
//! - [`Oracle::label_initial`] — the first-round labels with the mistakes
//!   the cross-check catches.
//!
//! Both are deterministic in the oracle seed and the pair identity.

use crate::truth::GroundTruth;
use crate::vocab;
use em_estimate::Label;
use std::hash::{Hash, Hasher};

/// Everything the expert looks at when labeling one pair.
#[derive(Debug, Clone, Copy)]
pub struct PairView<'a> {
    /// Left (UMETRICS) key: `UniqueAwardNumber`.
    pub award_number: &'a str,
    /// Right (USDA) key: `AccessionNumber`.
    pub accession: &'a str,
    /// Left title as shown to the expert.
    pub left_title: &'a str,
    /// Right title as shown to the expert.
    pub right_title: &'a str,
    /// USDA `AwardNumber`, when present.
    pub right_award_number: Option<&'a str>,
    /// USDA `ProjectNumber`, when present (and carried through projection).
    pub right_project_number: Option<&'a str>,
}

/// Behavioural knobs of the simulated experts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// Seed mixed into every per-pair decision.
    pub seed: u64,
    /// P(label `Unsure`) for true matches whose titles are generic and
    /// whose USDA award number is missing — "not unique enough to be
    /// declared matches".
    pub p_unsure_generic: f64,
    /// P(label `Unsure`) for non-matches with (near-)identical titles.
    pub p_unsure_similar: f64,
    /// First round only: P(mistakenly label a true match `No`).
    pub p_initial_miss: f64,
    /// First round only: P(downgrade a decided label to `Unsure`) on
    /// similar-title pairs.
    pub p_initial_waffle: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            seed: 77,
            p_unsure_generic: 0.6,
            p_unsure_similar: 0.5,
            p_initial_miss: 0.04,
            p_initial_waffle: 0.5,
        }
    }
}

/// The simulated expert team.
#[derive(Debug, Clone)]
pub struct Oracle<'a> {
    truth: &'a GroundTruth,
    cfg: OracleConfig,
}

/// Deterministic per-(pair, channel) uniform draw in `[0, 1)`.
pub(crate) fn pair_draw(seed: u64, award: &str, accession: &str, channel: u32) -> f64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    award.hash(&mut h);
    accession.hash(&mut h);
    channel.hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

#[allow(clippy::disallowed_methods)] // data generation, not a matching hot path
fn normalize_title(t: &str) -> String {
    t.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

fn is_generic_title(t: &str) -> bool {
    let n = normalize_title(t);
    vocab::GENERIC_TITLES.iter().any(|g| normalize_title(g) == n)
}

fn has_multistate_marker(t: &str) -> bool {
    vocab::MULTISTATE_MARKERS.iter().any(|m| t.contains(m))
}

/// Titles the experts call "very similar": equal after case folding, or
/// one extends the other by a multistate marker.
fn titles_similar(left: &str, right: &str) -> bool {
    let (l, r) = (normalize_title(left), normalize_title(right));
    if l.is_empty() || r.is_empty() {
        return false;
    }
    l == r || r.starts_with(&l) || l.starts_with(&r)
}

impl<'a> Oracle<'a> {
    /// Creates the oracle over a ground truth.
    pub fn new(truth: &'a GroundTruth, cfg: OracleConfig) -> Oracle<'a> {
        Oracle { truth, cfg }
    }

    /// The settled (post-discussion) label for a pair.
    pub fn label(&self, v: &PairView<'_>) -> Label {
        let is_match = self.truth.is_match(v.award_number, v.accession);
        if is_match {
            // Generic title with no identifier to confirm: sometimes the
            // experts cannot commit even though the pair is truly a match.
            if is_generic_title(v.left_title) && v.right_award_number.is_none() {
                let p = pair_draw(self.cfg.seed, v.award_number, v.accession, 1);
                if p < self.cfg.p_unsure_generic {
                    return Label::Unsure;
                }
            }
            return Label::Yes;
        }
        // D1: a similar title carrying a multistate NC/NRSP marker — the
        // experts settled all of these as Unsure ("even they did not know").
        if has_multistate_marker(v.right_title) && titles_similar(v.left_title, v.right_title) {
            return Label::Unsure;
        }
        // D2: similar titles but *different* identifiers — "labels must be
        // retained" as No: the experts trust the numbers over the titles.
        if titles_similar(v.left_title, v.right_title) {
            let suffix = v.award_number.split_whitespace().last().unwrap_or("");
            for num in [v.right_award_number, v.right_project_number].into_iter().flatten() {
                if !num.trim().is_empty() && suffix != num.trim() {
                    return Label::No;
                }
            }
        }
        // Similar titles that are not unique enough: sometimes Unsure.
        if titles_similar(v.left_title, v.right_title) {
            let p = pair_draw(self.cfg.seed, v.award_number, v.accession, 2);
            if p < self.cfg.p_unsure_similar {
                return Label::Unsure;
            }
        }
        Label::No
    }

    /// The first-round label, with the mistakes the Section 8 cross-check
    /// later catches: occasional misses of true matches and waffling
    /// (Unsure) on similar-title pairs.
    pub fn label_initial(&self, v: &PairView<'_>) -> Label {
        let settled = self.label(v);
        let is_match = self.truth.is_match(v.award_number, v.accession);
        if is_match && settled == Label::Yes {
            let p = pair_draw(self.cfg.seed, v.award_number, v.accession, 3);
            if p < self.cfg.p_initial_miss {
                return Label::No;
            }
        }
        if titles_similar(v.left_title, v.right_title) && settled != Label::Unsure {
            let p = pair_draw(self.cfg.seed, v.award_number, v.accession, 4);
            if p < self.cfg.p_initial_waffle {
                return Label::Unsure;
            }
        }
        settled
    }

    /// The ground truth this oracle consults (exposed for evaluation code).
    pub fn truth(&self) -> &GroundTruth {
        self.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        let mut t = GroundTruth::default();
        t.add_match("10.200 2008-11111-22222", "200001");
        t.add_match("10.203 WIS01040", "200002");
        t
    }

    fn view<'a>(
        award: &'a str,
        acc: &'a str,
        lt: &'a str,
        rt: &'a str,
        ran: Option<&'a str>,
    ) -> PairView<'a> {
        PairView {
            award_number: award,
            accession: acc,
            left_title: lt,
            right_title: rt,
            right_award_number: ran,
            right_project_number: None,
        }
    }

    #[test]
    fn true_match_with_identifier_is_yes() {
        let t = truth();
        let o = Oracle::new(&t, OracleConfig::default());
        let v = view(
            "10.200 2008-11111-22222",
            "200001",
            "CORN FUNGICIDE GUIDELINES",
            "Corn Fungicide Guidelines",
            Some("2008-11111-22222"),
        );
        assert_eq!(o.label(&v), Label::Yes);
    }

    #[test]
    fn clear_non_match_is_no() {
        let t = truth();
        let o = Oracle::new(&t, OracleConfig::default());
        let v = view(
            "10.200 2008-11111-22222",
            "200099",
            "CORN FUNGICIDE GUIDELINES",
            "Completely Unrelated Topic",
            None,
        );
        assert_eq!(o.label(&v), Label::No);
    }

    #[test]
    fn d1_multistate_clone_is_unsure() {
        let t = truth();
        let o = Oracle::new(&t, OracleConfig::default());
        let v = view(
            "10.203 WIS01040",
            "200777",
            "Swamp Dodder Ecology",
            "Swamp Dodder Ecology NC-1234",
            None,
        );
        assert_eq!(o.label(&v), Label::Unsure);
    }

    #[test]
    fn generic_match_without_identifier_can_be_unsure() {
        let mut t = GroundTruth::default();
        // Create enough generic matches that some draw Unsure.
        for i in 0..40 {
            t.add_match(&format!("10.250 WIS{i:05}"), &format!("3000{i:02}"));
        }
        let o = Oracle::new(&t, OracleConfig::default());
        let mut labels = Vec::new();
        for i in 0..40 {
            let award = format!("10.250 WIS{i:05}");
            let acc = format!("3000{i:02}");
            let v = view(&award, &acc, "Lab Supplies", "Lab Supplies", None);
            labels.push(o.label(&v));
        }
        assert!(labels.contains(&Label::Unsure));
        assert!(labels.contains(&Label::Yes));
        assert!(!labels.contains(&Label::No), "a true match is never settled as No");
    }

    #[test]
    fn initial_round_makes_correctable_mistakes() {
        let mut t = GroundTruth::default();
        for i in 0..200 {
            t.add_match(&format!("10.250 A{i}"), &format!("4000{i:03}"));
        }
        let o = Oracle::new(&t, OracleConfig::default());
        let mut initial_wrong = 0;
        for i in 0..200 {
            let award = format!("10.250 A{i}");
            let acc = format!("4000{i:03}");
            let v = view(&award, &acc, "Soil Nutrient Cycling", "Unrelated", Some("A9"));
            let settled = o.label(&v);
            let first = o.label_initial(&v);
            if first != settled {
                initial_wrong += 1;
                assert_eq!(first, Label::No, "initial miss labels a match as No");
            }
        }
        assert!(initial_wrong > 0, "expected some first-round misses");
        assert!(initial_wrong < 40, "misses should be rare, got {initial_wrong}");
    }

    #[test]
    fn labels_deterministic() {
        let t = truth();
        let o = Oracle::new(&t, OracleConfig::default());
        let v = view("10.203 WIS01040", "200555", "Lab Supplies", "Lab Supplies", None);
        assert_eq!(o.label(&v), o.label(&v));
        assert_eq!(o.label_initial(&v), o.label_initial(&v));
    }

    #[test]
    fn similar_title_nonmatch_waffles_more_initially() {
        let t = truth();
        let o = Oracle::new(&t, OracleConfig::default());
        let mut settled_unsure = 0;
        let mut initial_unsure = 0;
        for i in 0..100 {
            let acc = format!("5000{i:02}");
            let v = view(
                "10.203 WIS01040",
                &acc,
                "Swamp Dodder Applied Ecology",
                "Swamp Dodder Applied Ecology",
                None,
            );
            if o.label(&v) == Label::Unsure {
                settled_unsure += 1;
            }
            if o.label_initial(&v) == Label::Unsure {
                initial_unsure += 1;
            }
        }
        assert!(initial_unsure >= settled_unsure);
        assert!(initial_unsure > 50, "primarily unsures in round one");
    }
}
