//! # em-datagen — the synthetic UMETRICS/USDA scenario and labeling oracle
//!
//! The real UMETRICS and USDA data is restricted; this crate is the
//! documented substitute (see DESIGN.md). [`Scenario::generate`] builds the
//! seven raw tables of the paper's Figure 2 — with the paper's schemas and
//! the paper's row counts for the matching-relevant tables — a withheld
//! "extra data" batch (Section 10), and a hidden [`GroundTruth`].
//! [`Oracle`] simulates the domain-expert team's labeling behaviour
//! (`Yes`/`No`/`Unsure`, first-round mistakes, D1-D3 discrepancy rulings).
//!
//! ```
//! use em_datagen::{Scenario, ScenarioConfig};
//!
//! let s = Scenario::generate(ScenarioConfig::small()).unwrap();
//! assert_eq!(s.award_agg.n_cols(), 13);
//! assert!(!s.truth.is_empty());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod flaky;
pub mod oracle;
pub mod scenario;
pub mod truth;
pub mod vocab;

pub use config::ScenarioConfig;
pub use flaky::{FlakyConfig, FlakyOracle, LabelBudget, LabelSource, OracleFault};
pub use oracle::{Oracle, OracleConfig, PairView};
pub use scenario::Scenario;
pub use truth::GroundTruth;
