//! Scenario configuration: sizes and noise rates of the synthetic data.
//!
//! The `paper()` preset reproduces the case study's matching-relevant row
//! counts exactly (1336 + 496 UMETRICS awards, 1915 USDA rows) and scales
//! the bulk auxiliary tables (employees, vendors) down ~100×: they
//! contribute only profiling workload, not matching signal, and the paper's
//! 1.45M-row employees table would dominate test time for no fidelity gain
//! (documented substitution in DESIGN.md).

/// All knobs of the synthetic scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// RNG seed; every table and the ground truth are deterministic in it.
    pub seed: u64,
    /// UMETRICS award rows delivered initially (paper: 1336).
    pub n_awards: usize,
    /// UMETRICS award rows withheld and delivered later (paper: 496).
    pub n_extra_awards: usize,
    /// Total USDA rows (paper: 1915).
    pub n_usda: usize,
    /// Rows in the employees table (paper: 1,454,070; scaled down).
    pub n_employees: usize,
    /// Rows in the vendors table (paper: 377,746; scaled down).
    pub n_vendors: usize,
    /// Rows in the sub-awards table (paper: 21,470; scaled down).
    pub n_subawards: usize,
    /// Rows in the object-codes table (paper: 4,574).
    pub n_object_codes: usize,
    /// Rows in the org-units table (paper: 264).
    pub n_org_units: usize,

    /// Fraction of projects funded by federal mechanisms (their identifiers
    /// follow `YYYY-#####-#####`); the rest are state projects (`WIS#####`).
    pub frac_federal: f64,
    /// Probability a project also appears in the USDA table at all.
    pub p_in_usda: f64,
    /// Probability a matched project has 2 (resp. 3) annual USDA records —
    /// the one-to-many structure of Section 10.
    pub p_two_records: f64,
    /// See [`ScenarioConfig::p_two_records`].
    pub p_three_records: f64,
    /// Probability a *federal* USDA record still has its award number
    /// populated (missing numbers are the M2 cases).
    pub p_federal_award_present: f64,
    /// Probability a USDA record carries its state project number.
    pub p_project_number_present: f64,
    /// Probability a project draws a generic title ("Lab Supplies") shared
    /// with unrelated projects.
    pub p_generic_title: f64,
    /// Probability of a small typo injected into the USDA copy of a title.
    pub p_title_typo: f64,
    /// Fraction of USDA filler rows whose title is a near-copy of a real
    /// project title plus a multistate `NC/NRSP` marker (discrepancy D1).
    pub p_filler_multistate_clone: f64,
    /// Probability a project is a *sibling* of the previous one: same title
    /// (a continuation re-awarded under a new number). Sibling cross-pairs
    /// are the D2 false positives the negative rule repairs.
    pub p_sibling_title: f64,
    /// Probability a matched USDA record carries a *wrong* project number
    /// (clerical error) — the negative rule then flips a true match,
    /// reproducing the paper's small recall cost of the rules.
    pub p_wrong_project_number: f64,
    /// Probability a matched USDA record's title is garbled beyond token
    /// overlap — such matches escape every blocking scheme and are only
    /// recoverable through the Section 10 project-number rule.
    pub p_usda_title_garbled: f64,
    /// Probability a USDA record's project director is missing.
    pub p_director_missing: f64,
    /// Probability a project's director does not appear in the employees
    /// table (stale staff lists) — removing the name-overlap signal that
    /// would otherwise separate sibling projects from true matches.
    pub p_director_unlisted: f64,
}

impl ScenarioConfig {
    /// Paper-scale preset: matching-relevant tables at exact paper sizes.
    pub fn paper() -> ScenarioConfig {
        ScenarioConfig {
            seed: 20190326, // EDBT 2019 opening day
            n_awards: 1336,
            n_extra_awards: 496,
            n_usda: 1915,
            n_employees: 14_540,
            n_vendors: 3_777,
            n_subawards: 2_147,
            n_object_codes: 4_574,
            n_org_units: 264,
            frac_federal: 0.42,
            p_in_usda: 0.58,
            p_two_records: 0.12,
            p_three_records: 0.04,
            p_federal_award_present: 0.65,
            p_project_number_present: 0.72,
            p_generic_title: 0.03,
            p_title_typo: 0.06,
            p_filler_multistate_clone: 0.08,
            p_sibling_title: 0.07,
            p_wrong_project_number: 0.03,
            p_usda_title_garbled: 0.05,
            p_director_missing: 0.12,
            p_director_unlisted: 0.30,
        }
    }

    /// Small preset for unit/integration tests: same structure, ~20× fewer
    /// rows.
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            n_awards: 70,
            n_extra_awards: 25,
            n_usda: 100,
            n_employees: 700,
            n_vendors: 150,
            n_subawards: 100,
            n_object_codes: 40,
            n_org_units: 12,
            // Denser generic titles so the small scenario still exercises
            // the short-title (C3 − C2) blocking path.
            p_generic_title: 0.10,
            ..ScenarioConfig::paper()
        }
    }

    /// A scenario scaled by `factor` relative to the paper preset in every
    /// table (used by the scalability benches; `scaled(1.0)` is `paper()`).
    pub fn scaled(factor: f64) -> ScenarioConfig {
        let f = factor.max(0.01);
        let scale = |n: usize| ((n as f64 * f).round() as usize).max(1);
        let p = ScenarioConfig::paper();
        ScenarioConfig {
            n_awards: scale(p.n_awards),
            n_extra_awards: scale(p.n_extra_awards),
            n_usda: scale(p.n_usda),
            n_employees: scale(p.n_employees),
            n_vendors: scale(p.n_vendors),
            n_subawards: scale(p.n_subawards),
            n_object_codes: scale(p.n_object_codes),
            n_org_units: scale(p.n_org_units),
            ..p
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> ScenarioConfig {
        self.seed = seed;
        self
    }

    /// Total projects in the ground-truth universe.
    pub fn n_projects(&self) -> usize {
        self.n_awards + self.n_extra_awards
    }

    /// Sanity-checks rates and sizes; generation calls this first.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("frac_federal", self.frac_federal),
            ("p_in_usda", self.p_in_usda),
            ("p_two_records", self.p_two_records),
            ("p_three_records", self.p_three_records),
            ("p_federal_award_present", self.p_federal_award_present),
            ("p_project_number_present", self.p_project_number_present),
            ("p_generic_title", self.p_generic_title),
            ("p_title_typo", self.p_title_typo),
            ("p_filler_multistate_clone", self.p_filler_multistate_clone),
            ("p_sibling_title", self.p_sibling_title),
            ("p_wrong_project_number", self.p_wrong_project_number),
            ("p_usda_title_garbled", self.p_usda_title_garbled),
            ("p_director_missing", self.p_director_missing),
            ("p_director_unlisted", self.p_director_unlisted),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.p_two_records + self.p_three_records > 1.0 {
            return Err("p_two_records + p_three_records exceed 1".to_string());
        }
        if self.n_projects() == 0 {
            return Err("need at least one project".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ScenarioConfig::paper().validate().unwrap();
        ScenarioConfig::small().validate().unwrap();
    }

    #[test]
    fn paper_preset_matches_figure2_counts() {
        let c = ScenarioConfig::paper();
        assert_eq!(c.n_awards, 1336);
        assert_eq!(c.n_extra_awards, 496);
        assert_eq!(c.n_usda, 1915);
        assert_eq!(c.n_object_codes, 4574);
        assert_eq!(c.n_org_units, 264);
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut c = ScenarioConfig::small();
        c.p_in_usda = 1.5;
        assert!(c.validate().is_err());
        let mut c2 = ScenarioConfig::small();
        c2.p_two_records = 0.7;
        c2.p_three_records = 0.7;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn scaled_preset() {
        let x1 = ScenarioConfig::scaled(1.0);
        assert_eq!(x1.n_awards, 1336);
        let x2 = ScenarioConfig::scaled(2.0);
        assert_eq!(x2.n_awards, 2672);
        assert_eq!(x2.n_usda, 3830);
        x2.validate().unwrap();
        let tiny = ScenarioConfig::scaled(0.001);
        assert!(tiny.n_awards >= 1);
        tiny.validate().unwrap();
    }

    #[test]
    fn with_seed_builder() {
        let c = ScenarioConfig::small().with_seed(99);
        assert_eq!(c.seed, 99);
    }
}
