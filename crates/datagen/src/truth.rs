//! Ground truth for the synthetic scenario.
//!
//! Matches are keyed by `(UniqueAwardNumber, AccessionNumber)` — the same
//! identifier pairs the UMETRICS team required as the deliverable (Section
//! 6: "the output matches to be listed as pairs of UniqueAwardNumber and
//! AccessionNumber"). Keying by identifier rather than row index keeps the
//! truth valid across the pipeline's projections, joins, and re-orderings.

use std::collections::{BTreeMap, BTreeSet};

/// The hidden true match set plus generation metadata the experiments need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    matches: BTreeSet<(String, String)>,
    by_award: BTreeMap<String, Vec<String>>,
    by_accession: BTreeMap<String, Vec<String>>,
    extra_awards: BTreeSet<String>,
}

impl GroundTruth {
    /// Records a true match.
    pub fn add_match(&mut self, award: &str, accession: &str) {
        if self.matches.insert((award.to_string(), accession.to_string())) {
            self.by_award
                .entry(award.to_string())
                .or_default()
                .push(accession.to_string());
            self.by_accession
                .entry(accession.to_string())
                .or_default()
                .push(award.to_string());
        }
    }

    /// Marks an award as belonging to the withheld "extra data" batch.
    pub fn mark_extra(&mut self, award: &str) {
        self.extra_awards.insert(award.to_string());
    }

    /// True when the pair is a real match.
    pub fn is_match(&self, award: &str, accession: &str) -> bool {
        self.matches.contains(&(award.to_string(), accession.to_string()))
    }

    /// Number of true match pairs.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when no matches exist.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Iterates `(award, accession)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.matches.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }

    /// Accession numbers matching one award (the one-to-many structure).
    pub fn accessions_for(&self, award: &str) -> &[String] {
        self.by_award.get(award).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Awards matching one accession number.
    pub fn awards_for(&self, accession: &str) -> &[String] {
        self.by_accession.get(accession).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when the award was withheld into the extra batch.
    pub fn is_extra_award(&self, award: &str) -> bool {
        self.extra_awards.contains(award)
    }

    /// Matches whose award is in the initial (non-extra) batch.
    pub fn n_matches_initial(&self) -> usize {
        self.matches.iter().filter(|(a, _)| !self.extra_awards.contains(a)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut t = GroundTruth::default();
        t.add_match("10.200 A1", "100");
        t.add_match("10.200 A1", "101"); // one-to-many
        t.add_match("10.203 B1", "102");
        assert!(t.is_match("10.200 A1", "100"));
        assert!(!t.is_match("10.200 A1", "102"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.accessions_for("10.200 A1"), &["100", "101"]);
        assert_eq!(t.awards_for("101"), &["10.200 A1"]);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut t = GroundTruth::default();
        t.add_match("a", "1");
        t.add_match("a", "1");
        assert_eq!(t.len(), 1);
        assert_eq!(t.accessions_for("a").len(), 1);
    }

    #[test]
    fn extra_tracking() {
        let mut t = GroundTruth::default();
        t.add_match("a", "1");
        t.add_match("b", "2");
        t.mark_extra("b");
        assert!(t.is_extra_award("b"));
        assert!(!t.is_extra_award("a"));
        assert_eq!(t.n_matches_initial(), 1);
    }

    #[test]
    fn unknown_keys_empty() {
        let t = GroundTruth::default();
        assert!(t.accessions_for("nope").is_empty());
        assert!(t.is_empty());
    }
}
