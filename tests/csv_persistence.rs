//! Cross-crate integration: the generated scenario survives a round trip
//! through CSV files on disk — the form the real raw data arrives in
//! ("We received the raw data … in a Google Drive folder") — and the
//! pipeline front half produces identical results from the reloaded copy.

use std::path::{Path, PathBuf};
use umetrics_em::core::blocking_plan::{run_blocking, BlockingPlan};
use umetrics_em::core::preprocess::{project_umetrics, project_usda};
use umetrics_em::datagen::{Scenario, ScenarioConfig};
use umetrics_em::table::{csv, Table};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("umetrics-em-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn round_trip(dir: &Path, t: &Table) -> Table {
    let path = dir.join(format!("{}.csv", t.name()));
    csv::write_path(t, &path).unwrap();
    csv::read_path(&path).unwrap()
}

#[test]
fn scenario_round_trips_through_disk_and_pipeline_agrees() {
    let dir = tempdir("roundtrip");
    let s = Scenario::generate(ScenarioConfig::small()).unwrap();

    let award_agg2 = round_trip(&dir, &s.award_agg);
    let employees2 = round_trip(&dir, &s.employees);
    let usda2 = round_trip(&dir, &s.usda);

    assert_eq!(award_agg2.n_rows(), s.award_agg.n_rows());
    assert_eq!(award_agg2.n_cols(), s.award_agg.n_cols());
    assert_eq!(usda2.n_cols(), 78);

    // The pipeline front half must behave identically on the reloaded copy.
    let u1 = project_umetrics(&s.award_agg, &s.employees).unwrap();
    let u2 = project_umetrics(&award_agg2, &employees2).unwrap();
    let d1 = project_usda(&s.usda, true).unwrap();
    let d2 = project_usda(&usda2, true).unwrap();

    let b1 = run_blocking(&u1, &d1, &BlockingPlan::default()).unwrap();
    let b2 = run_blocking(&u2, &d2, &BlockingPlan::default()).unwrap();
    assert_eq!(b1.consolidated.to_vec(), b2.consolidated.to_vec());
    assert_eq!(b1.c1.len(), b2.c1.len());
    assert_eq!(b1.c2.len(), b2.c2.len());
    assert_eq!(b1.c3.len(), b2.c3.len());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reloaded_tables_keep_types_needed_by_features() {
    let dir = tempdir("types");
    let s = Scenario::generate(ScenarioConfig::small()).unwrap();
    let usda2 = round_trip(&dir, &s.usda);
    use umetrics_em::table::DataType;
    // Date columns must re-infer as dates, accession as int.
    assert_eq!(
        usda2.schema().column("ProjectStartDate").unwrap().dtype,
        DataType::Date
    );
    assert_eq!(
        usda2.schema().column("AccessionNumber").unwrap().dtype,
        DataType::Int
    );
    std::fs::remove_dir_all(&dir).ok();
}
