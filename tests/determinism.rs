//! Thread-count invariance of the performance engine.
//!
//! The parallel executor partitions index ranges into contiguous chunks and
//! joins them in order, so every fan-out point (blocking probes, feature
//! extraction, forest fitting, CV folds, batch prediction) must produce
//! *bit-identical* results at any thread count. These tests pin that
//! guarantee at each layer and for the full case study, including a
//! checkpointed resume at a different thread count than the original run.

use std::sync::{Mutex, MutexGuard, OnceLock};

use umetrics_em::blocking::{Blocker, OverlapBlocker, SetSimBlocker};
use umetrics_em::core::pipeline::{CaseStudy, CaseStudyConfig, CaseStudyReport};
use umetrics_em::core::{project_umetrics, project_usda};
use umetrics_em::datagen::{Scenario, ScenarioConfig};
use umetrics_em::features::{auto_features, extract_vectors, FeatureOptions};
use umetrics_em::ml::forest::RandomForestLearner;
use umetrics_em::ml::{impute_mean, Dataset, Model};
use umetrics_em::table::Table;

/// `set_threads` is process-global, so tests that flip it must not
/// interleave. (Results are thread-count-invariant either way — the guard
/// keeps the *requested* counts honest, not the outputs.)
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

fn at_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    umetrics_em::parallel::set_threads(n);
    let out = f();
    umetrics_em::parallel::set_threads(0);
    out
}

fn projected_tables() -> (Table, Table, Scenario) {
    let s = Scenario::generate(ScenarioConfig::small()).unwrap();
    let u = project_umetrics(&s.award_agg, &s.employees).unwrap();
    let d = project_usda(&s.usda, false).unwrap();
    (u, d, s)
}

#[test]
fn candidate_sets_are_thread_count_invariant() {
    let _guard = thread_lock();
    let (u, d, _) = projected_tables();
    let overlap = OverlapBlocker::new("AwardTitle", "AwardTitle", 3);
    let oc = SetSimBlocker::overlap_coefficient("AwardTitle", "AwardTitle", 0.7);

    let base_overlap = at_threads(1, || overlap.block(&u, &d).unwrap().to_vec());
    let base_oc = at_threads(1, || oc.block(&u, &d).unwrap().to_vec());
    assert!(!base_overlap.is_empty());

    for threads in [2, 5, 16] {
        let ov = at_threads(threads, || overlap.block(&u, &d).unwrap().to_vec());
        assert_eq!(ov, base_overlap, "overlap blocker diverged at {threads} threads");
        let oc_pairs = at_threads(threads, || oc.block(&u, &d).unwrap().to_vec());
        assert_eq!(oc_pairs, base_oc, "set-sim blocker diverged at {threads} threads");
    }
}

#[test]
fn forest_probabilities_are_thread_count_invariant() {
    let _guard = thread_lock();
    let (u, d, s) = projected_tables();
    let pairs = OverlapBlocker::new("AwardTitle", "AwardTitle", 3).block(&u, &d).unwrap().to_vec();
    let features = auto_features(
        &u,
        &d,
        &FeatureOptions::excluding(&["RecordId", "AccessionNumber"]).with_case_insensitive(),
    );

    // Extraction itself must be invariant (bitwise, including NaN slots).
    let x1 = at_threads(1, || extract_vectors(&features, &u, &d, &pairs).unwrap());
    for threads in [2, 7] {
        let xn = at_threads(threads, || extract_vectors(&features, &u, &d, &pairs).unwrap());
        let a: Vec<u64> = x1.iter().flatten().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = xn.iter().flatten().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "feature vectors diverged at {threads} threads");
    }

    let y: Vec<bool> = pairs
        .iter()
        .map(|p| {
            s.truth.is_match(
                &u.get(p.left, "AwardNumber").map(|v| v.render()).unwrap_or_default(),
                &d.get(p.right, "AccessionNumber").map(|v| v.render()).unwrap_or_default(),
            )
        })
        .collect();
    let mut data = Dataset::new(features.names(), x1, y).unwrap();
    let _ = impute_mean(&mut data);

    let probe: Vec<&[f64]> = data.x.iter().map(Vec::as_slice).collect();
    let base: Vec<u64> = {
        let model = at_threads(1, || RandomForestLearner::default().fit_forest(&data).unwrap());
        probe.iter().map(|row| model.predict_proba(row).to_bits()).collect()
    };
    for threads in [2, 4, 16] {
        let model =
            at_threads(threads, || RandomForestLearner::default().fit_forest(&data).unwrap());
        let got: Vec<u64> = probe.iter().map(|row| model.predict_proba(row).to_bits()).collect();
        assert_eq!(got, base, "forest probabilities diverged at {threads} threads");
    }
}

/// Strips per-run wall-clock noise so reports compare on content alone.
fn canonical(mut r: CaseStudyReport) -> CaseStudyReport {
    r.resilience.resumed_stages.clear();
    r
}

#[test]
fn full_report_is_thread_count_invariant() {
    let _guard = thread_lock();
    let study = CaseStudy::new(CaseStudyConfig::small());
    let base = at_threads(1, || study.run().unwrap());
    for threads in [2, 6] {
        let got = at_threads(threads, || study.run().unwrap());
        assert_eq!(got, base, "case-study report diverged at {threads} threads");
    }
}

#[test]
fn checkpoint_resume_is_thread_count_invariant() {
    let _guard = thread_lock();
    let dir = std::env::temp_dir().join(format!("em-determinism-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let study = CaseStudy::new(CaseStudyConfig::small());
    // Fresh single-threaded reference, no checkpointing involved.
    let reference = at_threads(1, || study.run().unwrap());
    // Checkpoint at 2 threads, then resume the same directory at 4: every
    // stage loads from disk and the stitched report must match the clean
    // single-threaded run bit for bit.
    let first = at_threads(2, || study.run_checkpointed(&dir).unwrap());
    assert_eq!(canonical(first), canonical(reference.clone()));
    let resumed = at_threads(4, || study.run_checkpointed(&dir).unwrap());
    assert!(!resumed.resilience.resumed_stages.is_empty(), "second run must resume from disk");
    assert_eq!(canonical(resumed), canonical(reference));

    let _ = std::fs::remove_dir_all(&dir);
}
