//! Cross-crate integration: the full case study through the facade crate,
//! including shape robustness across seeds.

use umetrics_em::core::pipeline::{CaseStudy, CaseStudyConfig};
use umetrics_em::datagen::ScenarioConfig;

#[test]
fn case_study_runs_and_is_internally_consistent() {
    let r = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();

    // Figure 2: seven tables, paper schemas.
    assert_eq!(r.table_summaries.len(), 7);
    let cols: Vec<usize> = r.table_summaries.iter().map(|(_, _, c)| *c).collect();
    assert_eq!(cols, vec![13, 13, 3, 5, 23, 21, 78]);

    // Candidate algebra.
    assert_eq!(r.c2_and_c3 + r.c2_only, r.c2);
    assert_eq!(r.c2_and_c3 + r.c3_only, r.c3);

    // Workflow accounting.
    assert_eq!(r.initial_total, r.initial_sure + r.initial_predicted);
    assert_eq!(
        r.patched.total,
        r.patched.sure_original
            + r.patched.sure_extra
            + r.patched.predicted_original
            + r.patched.predicted_extra
    );

    // Negative rules remove, never add.
    assert!(r.final_total <= r.patched.total);
    assert_eq!(r.final_total + r.flipped, r.patched.total);
}

#[test]
fn headline_shape_holds_across_seeds() {
    // The paper's qualitative result must not depend on one lucky seed.
    for seed in [3u64, 1234, 987_654] {
        let mut cfg = CaseStudyConfig::small();
        cfg.scenario = ScenarioConfig::small().with_seed(seed);
        cfg.seed = seed;
        let r = CaseStudy::new(cfg).run().unwrap();
        let get = |name: &str| {
            r.truth_scores
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
                .unwrap()
        };
        let iris = get("IRIS");
        let learning = get("learning");
        let final_ = get("learning+rules");
        assert!(iris.precision > 0.99, "seed {seed}: IRIS precision {}", iris.precision);
        assert!(
            learning.recall > iris.recall + 0.05,
            "seed {seed}: learning recall {} vs IRIS {}",
            learning.recall,
            iris.recall
        );
        assert!(
            final_.precision >= learning.precision - 1e-9,
            "seed {seed}: negative rules lowered precision ({} -> {})",
            learning.precision,
            final_.precision
        );
        assert!(
            final_.f1 > iris.f1,
            "seed {seed}: final F1 {} should beat IRIS {}",
            final_.f1,
            iris.f1
        );
    }
}

#[test]
fn estimation_intervals_shrink_with_labels() {
    let r = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
    // For each matcher, the recall interval at the larger label count must
    // be no wider than at the smaller (precision can degenerate at 100%).
    for matcher in ["learning", "IRIS"] {
        let rows: Vec<_> = r.estimates.iter().filter(|e| e.matcher == matcher).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].n_labels < rows[1].n_labels);
        assert!(
            rows[1].estimate.recall.width() <= rows[0].estimate.recall.width() + 1e-9,
            "{matcher}: recall interval widened with more labels"
        );
    }
}

#[test]
fn report_is_deterministic_through_the_facade() {
    let a = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
    let b = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
    assert_eq!(a.consolidated, b.consolidated);
    assert_eq!(a.initial_total, b.initial_total);
    assert_eq!(a.final_total, b.final_total);
    assert_eq!(a.label_counts, b.label_counts);
    assert_eq!(
        a.selection_round2.iter().map(|m| &m.name).collect::<Vec<_>>(),
        b.selection_round2.iter().map(|m| &m.name).collect::<Vec<_>>()
    );
}
