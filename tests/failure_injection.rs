//! Failure injection: every stage surfaces dirty or malformed input as a
//! typed error instead of panicking or silently mis-matching.

use umetrics_em::blocking::{Blocker, OverlapBlocker};
use umetrics_em::core::preprocess::{project_umetrics, project_usda};
use umetrics_em::core::CoreError;
use umetrics_em::ml::dataset::Dataset;
use umetrics_em::ml::model::Learner;
use umetrics_em::ml::tree::DecisionTreeLearner;
use umetrics_em::table::{csv, Schema, Table, TableError, Value};

#[test]
fn corrupt_csv_is_rejected_with_location() {
    for (input, fragment) in [
        ("a,b\n1\n", "fields"),              // ragged row
        ("a\n\"unterminated\n", "unterminated"), // open quote
        ("a\n\"x\"tail\n", "closing quote"),  // text after quote
        ("", "empty input"),                  // no header
    ] {
        let err = csv::read_str("t", input).unwrap_err();
        match err {
            TableError::Csv { message, .. } => {
                assert!(
                    message.contains(fragment),
                    "{input:?}: message {message:?} missing {fragment:?}"
                )
            }
            other => panic!("{input:?}: expected Csv error, got {other}"),
        }
    }
}

#[test]
fn duplicate_award_keys_abort_preprocessing() {
    let award = csv::read_str(
        "UMETRICSAwardAggMatching",
        "UniqueAwardNumber,AwardTitle,FirstTransDate,LastTransDate\nW1,T,2008-01-01,2009-01-01\nW1,T2,2008-01-01,2009-01-01\n",
    )
    .unwrap();
    let employees = csv::read_str("emp", "UniqueAwardNumber,FullName\nW1,A B\n").unwrap();
    let err = project_umetrics(&award, &employees).unwrap_err();
    assert!(matches!(err, CoreError::Table(TableError::KeyViolation { .. })), "{err}");
}

#[test]
fn dangling_employee_reference_is_caught() {
    let award = csv::read_str(
        "a",
        "UniqueAwardNumber,AwardTitle,FirstTransDate,LastTransDate\nW1,T,2008-01-01,2009-01-01\n",
    )
    .unwrap();
    let employees = csv::read_str("emp", "UniqueAwardNumber,FullName\nW999,A B\n").unwrap();
    assert!(project_umetrics(&award, &employees).is_err());
}

#[test]
fn usda_without_accession_key_fails() {
    let usda = csv::read_str(
        "u",
        "AwardNumber,ProjectTitle,ProjectStartDate,ProjectEndDate,AccessionNumber,ProjectDirector\nX,T,2008-01-01,2009-01-01,1,D\nY,T2,2008-01-01,2009-01-01,1,D\n",
    )
    .unwrap();
    assert!(project_usda(&usda, false).is_err(), "duplicate accession must fail");
}

#[test]
fn blocker_on_missing_column_reports_it() {
    let t = csv::read_str("t", "Title\nabc\n").unwrap();
    let err = OverlapBlocker::new("Nope", "Title", 2).block(&t, &t).unwrap_err();
    assert!(err.to_string().contains("Nope"), "{err}");
}

#[test]
fn learner_rejects_nan_features_and_empty_data() {
    let nan = Dataset::new(vec!["f".into()], vec![vec![f64::NAN]], vec![true]).unwrap();
    assert!(DecisionTreeLearner::default().fit(&nan).is_err());
    let empty = Dataset::new(vec!["f".into()], vec![], vec![]).unwrap();
    assert!(DecisionTreeLearner::default().fit(&empty).is_err());
}

#[test]
fn table_rejects_type_confusion() {
    use umetrics_em::table::DataType;
    let mut t = Table::new(
        "t",
        Schema::of(&[("n", DataType::Int)]),
    );
    let err = t.push_row(vec![Value::Str("not a number".into())]).unwrap_err();
    assert!(matches!(err, TableError::TypeMismatch { .. }));
}

#[test]
fn all_null_label_columns_still_estimate_vacuously() {
    use umetrics_em::estimate::{estimate_accuracy, Label, SampleItem, Z95};
    // A sample that is entirely Unsure constrains nothing but must not
    // panic or divide by zero.
    let sample: Vec<SampleItem> =
        (0..10).map(|_| SampleItem { predicted: true, label: Label::Unsure }).collect();
    let est = estimate_accuracy(&sample, Z95);
    assert_eq!(est.n_used, 0);
    assert_eq!(est.precision.lo, 0.0);
    assert_eq!(est.precision.hi, 1.0);
}
