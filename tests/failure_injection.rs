//! Failure injection: every stage surfaces dirty or malformed input as a
//! typed error instead of panicking or silently mis-matching, and the
//! pipeline absorbs injected faults (flaky oracle, corrupted CSV, crashes
//! between stages) without changing its answers.

use proptest::prelude::*;
use umetrics_em::blocking::{Blocker, OverlapBlocker};
use umetrics_em::core::preprocess::{project_umetrics, project_usda};
use umetrics_em::core::{corrupt_csv, CaseStudy, CaseStudyConfig, CoreError, FaultPlan, STAGES};
use umetrics_em::ml::dataset::Dataset;
use umetrics_em::ml::model::Learner;
use umetrics_em::ml::tree::DecisionTreeLearner;
use umetrics_em::table::{csv, Schema, Table, TableError, Value};

#[test]
fn corrupt_csv_is_rejected_with_location() {
    for (input, fragment) in [
        ("a,b\n1\n", "fields"),              // ragged row
        ("a\n\"unterminated\n", "unterminated"), // open quote
        ("a\n\"x\"tail\n", "closing quote"),  // text after quote
        ("", "empty input"),                  // no header
    ] {
        let err = csv::read_str("t", input).unwrap_err();
        match err {
            TableError::Csv { message, .. } => {
                assert!(
                    message.contains(fragment),
                    "{input:?}: message {message:?} missing {fragment:?}"
                )
            }
            other => panic!("{input:?}: expected Csv error, got {other}"),
        }
    }
}

#[test]
fn duplicate_award_keys_abort_preprocessing() {
    let award = csv::read_str(
        "UMETRICSAwardAggMatching",
        "UniqueAwardNumber,AwardTitle,FirstTransDate,LastTransDate\nW1,T,2008-01-01,2009-01-01\nW1,T2,2008-01-01,2009-01-01\n",
    )
    .unwrap();
    let employees = csv::read_str("emp", "UniqueAwardNumber,FullName\nW1,A B\n").unwrap();
    let err = project_umetrics(&award, &employees).unwrap_err();
    assert!(matches!(err, CoreError::Table(TableError::KeyViolation { .. })), "{err}");
}

#[test]
fn dangling_employee_reference_is_caught() {
    let award = csv::read_str(
        "a",
        "UniqueAwardNumber,AwardTitle,FirstTransDate,LastTransDate\nW1,T,2008-01-01,2009-01-01\n",
    )
    .unwrap();
    let employees = csv::read_str("emp", "UniqueAwardNumber,FullName\nW999,A B\n").unwrap();
    assert!(project_umetrics(&award, &employees).is_err());
}

#[test]
fn usda_without_accession_key_fails() {
    let usda = csv::read_str(
        "u",
        "AwardNumber,ProjectTitle,ProjectStartDate,ProjectEndDate,AccessionNumber,ProjectDirector\nX,T,2008-01-01,2009-01-01,1,D\nY,T2,2008-01-01,2009-01-01,1,D\n",
    )
    .unwrap();
    assert!(project_usda(&usda, false).is_err(), "duplicate accession must fail");
}

#[test]
fn blocker_on_missing_column_reports_it() {
    let t = csv::read_str("t", "Title\nabc\n").unwrap();
    let err = OverlapBlocker::new("Nope", "Title", 2).block(&t, &t).unwrap_err();
    assert!(err.to_string().contains("Nope"), "{err}");
}

#[test]
fn learner_rejects_nan_features_and_empty_data() {
    let nan = Dataset::new(vec!["f".into()], vec![vec![f64::NAN]], vec![true]).unwrap();
    assert!(DecisionTreeLearner::default().fit(&nan).is_err());
    let empty = Dataset::new(vec!["f".into()], vec![], vec![]).unwrap();
    assert!(DecisionTreeLearner::default().fit(&empty).is_err());
}

#[test]
fn table_rejects_type_confusion() {
    use umetrics_em::table::DataType;
    let mut t = Table::new(
        "t",
        Schema::of(&[("n", DataType::Int)]),
    );
    let err = t.push_row(vec![Value::Str("not a number".into())]).unwrap_err();
    assert!(matches!(err, TableError::TypeMismatch { .. }));
}

#[test]
fn all_null_label_columns_still_estimate_vacuously() {
    use umetrics_em::estimate::{estimate_accuracy, Label, SampleItem, Z95};
    // A sample that is entirely Unsure constrains nothing but must not
    // panic or divide by zero.
    let sample: Vec<SampleItem> =
        (0..10).map(|_| SampleItem { predicted: true, label: Label::Unsure }).collect();
    let est = estimate_accuracy(&sample, Z95);
    assert_eq!(est.n_used, 0);
    assert_eq!(est.precision.lo, 0.0);
    assert_eq!(est.precision.hi, 1.0);
}

/// A fault plan that exercises every resilience path at once: a flaky
/// oracle, corrupted USDA CSV rows, and (per test) an injected crash.
fn active_faults() -> FaultPlan {
    FaultPlan {
        seed: 0xBAD5EED,
        p_oracle_unavailable: 0.15,
        p_oracle_timeout: 0.05,
        max_fault_attempts: 4,
        p_corrupt_row: 0.03,
        max_quarantine_fraction: 0.25,
        crash_after: None,
        ..FaultPlan::none()
    }
}

#[test]
fn faulty_runs_are_deterministic() {
    let mut cfg = CaseStudyConfig::small();
    cfg.faults = active_faults();
    let a = CaseStudy::new(cfg.clone()).run().unwrap();
    let b = CaseStudy::new(cfg).run().unwrap();
    assert!(!a.resilience.is_clean(), "the fault plan should actually fire");
    assert!(a.resilience.oracle_faults > 0);
    assert!(a.resilience.quarantined_rows > 0);
    assert_eq!(a, b, "two runs under the same fault plan must agree bit for bit");
}

/// Kill the pipeline after every single stage in turn; resuming from the
/// checkpoint directory must reproduce the uninterrupted report exactly,
/// even with the flaky oracle and CSV corruption active.
#[test]
fn crash_after_any_stage_resumes_to_identical_report() {
    let mut cfg = CaseStudyConfig::small();
    cfg.faults = active_faults();
    let baseline = CaseStudy::new(cfg.clone()).run().unwrap();

    for stage in STAGES {
        let dir = std::env::temp_dir()
            .join(format!("em-crash-{}-{}", stage, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut crashing = cfg.clone();
        crashing.faults.crash_after = Some(stage.to_string());
        let err = CaseStudy::new(crashing).run_checkpointed(&dir).unwrap_err();
        match err {
            CoreError::InjectedCrash(s) => assert_eq!(s, *stage),
            other => panic!("stage {stage}: expected InjectedCrash, got {other}"),
        }

        let mut resumed = CaseStudy::resume(&dir)
            .unwrap_or_else(|e| panic!("resume after {stage} crash failed: {e}"));
        assert!(
            resumed.resilience.resumed_stages.iter().any(|s| s == stage),
            "stage {stage} should have been restored from checkpoint, \
             resumed: {:?}",
            resumed.resilience.resumed_stages
        );
        resumed.resilience.resumed_stages.clear();
        assert_eq!(
            resumed, baseline,
            "crash after {stage} + resume must equal the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    /// Quarantine ingest conserves rows: however `corrupt_csv` mangles a
    /// table, every data row ends up either accepted or quarantined, and
    /// with corruption off nothing is quarantined at all.
    #[test]
    fn quarantine_conserves_rows(
        rows in proptest::collection::vec(
            proptest::collection::vec(
                proptest::string::string_regex("[a-z ,.]{0,10}").expect("valid regex"),
                2,
            ),
            1..30,
        ),
        seed in any::<u64>(),
        p in 0.0f64..0.6,
    ) {
        let table = Table::from_rows(
            "t",
            Schema::of_strings(&["a", "b"]),
            rows.iter()
                .map(|r| r.iter().map(|s| Value::Str(s.clone())).collect())
                .collect(),
        ).unwrap();
        let clean = csv::write_str(&table);

        let out = csv::read_quarantine("t", &corrupt_csv(&clean, seed, p), 1.0).unwrap();
        prop_assert_eq!(out.total_rows(), table.n_rows());

        let untouched = csv::read_quarantine("t", &corrupt_csv(&clean, seed, 0.0), 1.0).unwrap();
        prop_assert!(untouched.quarantined.is_empty());
        prop_assert_eq!(untouched.table.n_rows(), table.n_rows());
    }
}
