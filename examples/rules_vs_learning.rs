//! Rules vs learning vs learning + rules (Sections 11–12): compare the
//! IRIS production baseline, the learning-based workflow, and the final
//! learning + negative-rules workflow — both by Corleone estimation (what
//! the paper could measure) and against ground truth (what only the
//! generator can measure).
//!
//! Run with: `cargo run --release --example rules_vs_learning`

use umetrics_em::core::pipeline::{CaseStudy, CaseStudyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = CaseStudy::new(CaseStudyConfig::small()).run()?;

    println!("Corleone estimates from labeled candidate-set samples:");
    println!("  {:<18} {:>7} {:>22} {:>22}", "matcher", "labels", "precision", "recall");
    for e in r.estimates.iter().chain(&r.final_estimates) {
        println!(
            "  {:<18} {:>7} {:>22} {:>22}",
            e.matcher,
            e.n_labels,
            e.estimate.precision.to_string(),
            e.estimate.recall.to_string()
        );
    }

    println!("\nGround truth (hidden from the matchers):");
    println!("  {:<18} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}", "matcher", "P", "R", "F1", "tp", "fp", "fn");
    for (name, s) in &r.truth_scores {
        println!(
            "  {:<18} {:>7.1}% {:>7.1}% {:>7.1}% {:>6} {:>6} {:>6}",
            name,
            100.0 * s.precision,
            100.0 * s.recall,
            100.0 * s.f1,
            s.tp,
            s.fp,
            s.fn_
        );
    }

    println!("\nThe paper's shape to check against:");
    println!("  IRIS:            precision ≈ 100%, recall ≈ 65–72%");
    println!("  learning:        precision ≈ 75–80%, recall ≈ 98–99.6%");
    println!("  learning+rules:  precision ≈ 96.7–98.8%, recall ≈ 94.2–97%");
    println!("\nnegative rules flipped {} predictions; final match count = {}",
        r.flipped, r.final_total);
    Ok(())
}
