//! Blocking and the blocking debugger (Section 7): build the three-scheme
//! candidate set, sweep the overlap threshold, and audit what blocking
//! excluded with the MatchCatcher-style debugger.
//!
//! Run with: `cargo run --release --example blocking_debugger`

use umetrics_em::blocking::{debug_blocking, BlockingDebugger};
use umetrics_em::core::blocking_plan::{overlap_threshold_sweep, run_blocking, BlockingPlan};
use umetrics_em::core::preprocess::{project_umetrics, project_usda};
use umetrics_em::datagen::{Scenario, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::generate(ScenarioConfig::small())?;
    let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
    let s = project_usda(&scenario.usda, false)?;
    println!(
        "matching {} UMETRICS records against {} USDA records ({} pairs in A×B)",
        u.n_rows(),
        s.n_rows(),
        u.n_rows() * s.n_rows()
    );

    // The paper's threshold sweep before settling on K = 3.
    println!("\noverlap-threshold sweep on AwardTitle:");
    for (k, size) in overlap_threshold_sweep(&u, &s, &[1, 2, 3, 4, 5, 6, 7])? {
        println!("  K = {k}: {size} candidate pairs");
    }

    // The three-scheme plan with the footnote-3 accounting.
    let out = run_blocking(&u, &s, &BlockingPlan::default())?;
    println!("\nblocking plan:");
    println!("  C1 (award-number equivalence) : {}", out.c1.len());
    println!("  C2 (overlap K=3)              : {}", out.c2.len());
    println!("  C3 (overlap coefficient 0.7)  : {}", out.c3.len());
    println!(
        "  C2∩C3 = {}, C2−C3 = {}, C3−C2 = {} → neither subsumes the other",
        out.c2_and_c3(),
        out.c2_only(),
        out.c3_only()
    );
    println!("  consolidated C                : {}", out.consolidated.len());

    // Debugger audit: the most match-like pairs blocking *excluded*.
    let dbg = debug_blocking(
        &BlockingDebugger::new("AwardTitle", "AwardTitle").with_top_k(10),
        &u,
        &s,
        &out.consolidated,
    )?;
    println!("\ntop excluded pairs by match-likelihood (the audit list):");
    for d in &dbg {
        let lt = u.get(d.pair.left, "AwardTitle").unwrap().render();
        let rt = s.get(d.pair.right, "AwardTitle").unwrap().render();
        let truth = scenario.truth.is_match(
            &u.get(d.pair.left, "AwardNumber").unwrap().render(),
            &s.get(d.pair.right, "AccessionNumber").unwrap().render(),
        );
        println!(
            "  score {:.2} {} | {:.45} ↔ {:.45}",
            d.score,
            if truth { "MISSED MATCH" } else { "ok (non-match)" },
            lt,
            rt
        );
    }
    let missed = dbg
        .iter()
        .filter(|d| {
            scenario.truth.is_match(
                &u.get(d.pair.left, "AwardNumber").unwrap().render(),
                &s.get(d.pair.right, "AccessionNumber").unwrap().render(),
            )
        })
        .count();
    println!(
        "\n{missed} of the top {} audited pairs are true matches — {}",
        dbg.len(),
        if missed == 0 {
            "blocking can be frozen, as the paper concluded"
        } else {
            "the blocking pipeline needs another scheme"
        }
    );
    Ok(())
}
