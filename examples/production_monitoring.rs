//! Packaging the workflow and monitoring it in production — the Section 12
//! "next steps": serialize the final workflow as a reviewable spec, re-run
//! it on new data slices, and watch estimated precision per slice, flagging
//! slices that need a return to the development stage.
//!
//! Run with: `cargo run --release --example production_monitoring`

use umetrics_em::core::blocking_plan::{run_blocking, BlockingPlan};
use umetrics_em::core::labeling::run_labeling;
use umetrics_em::core::matcher::{build_training_data, select_matcher, train_matcher};
use umetrics_em::core::monitor::{AccuracyMonitor, MonitorConfig};
use umetrics_em::core::preprocess::{project_umetrics, project_usda};
use umetrics_em::core::spec::WorkflowSpec;
use umetrics_em::datagen::{Oracle, OracleConfig, Scenario, ScenarioConfig};
use umetrics_em::features::auto_features;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Development stage: train the workflow on the first slice. ----
    let dev = Scenario::generate(ScenarioConfig::small().with_seed(2015))?;
    let u = project_umetrics(&dev.award_agg, &dev.employees)?;
    let s = project_usda(&dev.usda, true)?;
    let candidates = run_blocking(&u, &s, &BlockingPlan::default())?.consolidated;
    let oracle = Oracle::new(&dev.truth, OracleConfig::default());
    let (labeled, _) = run_labeling(&u, &s, &candidates, &oracle, &[100, 100], 7)?;

    let spec = WorkflowSpec::umetrics_usda();
    println!("packaged workflow spec (checked into the repository):\n");
    println!("{}", spec.to_text());
    // The spec round-trips: this is what production re-reads.
    let spec = WorkflowSpec::parse(&spec.to_text())?;

    let stage = spec.matcher_stage(7);
    let features = auto_features(&u, &s, &stage.feature_opts);
    let (data, imputer) = build_training_data(&u, &s, &features, &labeled, &spec.rules())?;
    let ranking = select_matcher(&data, &stage)?;
    let matcher = train_matcher(features, imputer, &data, &ranking[0].learner, &stage)?;
    println!("trained matcher: {} (selection F1 {:.1}%)\n", matcher.learner_name,
        100.0 * ranking[0].f1());

    // ---- Production: monitor new slices as they arrive. ----
    let monitor = AccuracyMonitor {
        rules: spec.rules(),
        plan: spec.blocking,
        matcher: &matcher,
        apply_negative: spec.apply_negative,
        config: MonitorConfig {
            sample_size: 80,
            precision_floor: 0.85,
            seed: 3,
            ..MonitorConfig::default()
        },
    };

    println!("{:<14} {:>8} {:>8} {:>22} {:>7}", "slice", "matches", "sampled", "precision est.", "alert");
    for (name, seed, degrade) in [
        ("FY2016", 2016u64, false),
        ("FY2017", 2017, false),
        ("FY2018-dirty", 2018, true), // a slice whose identifiers went missing
    ] {
        let mut cfg = ScenarioConfig::small().with_seed(seed);
        if degrade {
            cfg.p_sibling_title = 0.85;
            cfg.frac_federal = 0.0;
            cfg.p_project_number_present = 0.0;
        }
        let slice = Scenario::generate(cfg)?;
        let su = project_umetrics(&slice.award_agg, &slice.employees)?;
        let ss = project_usda(&slice.usda, true)?;
        let slice_oracle = Oracle::new(&slice.truth, OracleConfig::default());
        let report = monitor.check_slice(name, &su, &ss, &slice_oracle)?;
        println!(
            "{:<14} {:>8} {:>8} {:>22} {:>7}",
            report.slice,
            report.n_matches,
            report.n_sampled,
            report.estimate.precision.to_string(),
            if report.alert { "ALERT" } else { "ok" }
        );
    }
    println!("\nan ALERT means the slice goes back to the development stage, as Section 12 prescribes.");
    Ok(())
}
