//! Understanding the data (Section 4): profile the seven raw tables the
//! way the EM team did with pandas-profiling — row/column counts, sample
//! rows, per-column missing/unique/mean/median — and run the key and
//! foreign-key checks of Section 6 step 2.
//!
//! Run with: `cargo run --release --example data_profiling`

use umetrics_em::core::preprocess::shares_columns_with_usda;
use umetrics_em::datagen::{Scenario, ScenarioConfig};
use umetrics_em::table::profile::profile_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s = Scenario::generate(ScenarioConfig::small())?;

    // Figure 2: the overview both teams started from.
    println!("{:<32} {:>8} {:>6}", "table", "rows", "cols");
    for t in s.raw_tables() {
        println!("{:<32} {:>8} {:>6}", t.name(), t.n_rows(), t.n_cols());
    }

    // Per-column statistics for the two matching-relevant UMETRICS tables
    // and the USDA table (truncated to its meaningful columns).
    println!("\n{}", profile_table(&s.award_agg));
    let usda_slim = s.usda.project(&[
        "AccessionNumber",
        "ProjectTitle",
        "AwardNumber",
        "ProjectNumber",
        "ProjectDirector",
        "ProjectStartDate",
        "RecipientOrganization",
    ])?;
    println!("{}", profile_table(&usda_slim));

    // The key heuristics the team eyeballed, then verified strictly.
    let p = profile_table(&s.award_agg);
    for col in &p.columns {
        if col.looks_like_key() {
            println!("{} looks like a key of {}", col.name, p.table);
        }
    }
    s.award_agg.check_key("UniqueAwardNumber")?;
    s.usda.check_key("AccessionNumber")?;
    s.employees
        .check_foreign_key("UniqueAwardNumber", &s.award_agg, "UniqueAwardNumber")?;
    println!("key and foreign-key checks passed (Section 6, step 2)");

    // Section 6, step 3: do the leftover tables share anything with USDA?
    for t in [&s.object_codes, &s.org_units, &s.sub_awards, &s.vendors] {
        let shared = shares_columns_with_usda(t, &s.usda);
        println!(
            "{}: {} column names shared with USDA{}",
            t.name(),
            shared.len(),
            if shared.is_empty() { " -> dropped from matching" } else { "" }
        );
    }
    Ok(())
}
