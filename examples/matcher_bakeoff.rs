//! The Section 9 matcher bake-off: five-fold cross-validation of six
//! learners, before and after adding case-insensitive features — the fix
//! that changed the winner in the paper (random forest → decision tree).
//!
//! Run with: `cargo run --release --example matcher_bakeoff`

use umetrics_em::core::blocking_plan::{run_blocking, BlockingPlan};
use umetrics_em::core::labeling::run_labeling;
use umetrics_em::core::matcher::{build_training_data, select_matcher, train_matcher, MatcherStage};
use umetrics_em::core::preprocess::{project_umetrics, project_usda};
use umetrics_em::datagen::{Oracle, OracleConfig, Scenario, ScenarioConfig};
use umetrics_em::features::auto_features;
use umetrics_em::rules::{EqualityRule, RuleSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::generate(ScenarioConfig::small())?;
    let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
    let s = project_usda(&scenario.usda, false)?;
    let candidates = run_blocking(&u, &s, &BlockingPlan::default())?.consolidated;

    // Label 200 sampled pairs with the simulated expert team.
    let oracle = Oracle::new(&scenario.truth, OracleConfig::default());
    let (labeled, _) = run_labeling(&u, &s, &candidates, &oracle, &[100, 100], 7)?;
    let (yes, no, unsure) = labeled.counts();
    println!("labeled sample: {yes} Yes / {no} No / {unsure} Unsure");

    // Sure-match pairs are excluded from training (rules handle them).
    let m1 = RuleSet {
        positive: vec![EqualityRule::suffix_equals("M1", "AwardNumber", "AwardNumber")],
        negative: vec![],
    };

    for (title, stage) in [
        ("round 1: case-sensitive features", MatcherStage::new(7)),
        (
            "round 2: + case-insensitive features",
            MatcherStage::new(7).with_case_insensitive(),
        ),
    ] {
        let features = auto_features(&u, &s, &stage.feature_opts);
        let (data, _) = build_training_data(&u, &s, &features, &labeled, &m1)?;
        let ranking = select_matcher(&data, &stage)?;
        println!(
            "\n{title}  ({} features, {} training pairs, {} positive)",
            features.len(),
            data.len(),
            data.n_positive()
        );
        println!("  {:<22} {:>8} {:>8} {:>8}", "matcher", "P", "R", "F1");
        for row in &ranking {
            println!(
                "  {:<22} {:>7.1}% {:>7.1}% {:>7.1}%",
                row.learner,
                100.0 * row.precision(),
                100.0 * row.recall(),
                100.0 * row.f1()
            );
        }
        println!("  → selected: {}", ranking[0].learner);

        // Explain the winner: which features carry the decision (the
        // PyMatcher debugger's importance view, for tree-based winners).
        let (data2, imputer) = build_training_data(&u, &s, &features, &labeled, &m1)?;
        let matcher =
            train_matcher(features.clone(), imputer, &data2, &ranking[0].learner, &stage)?;
        if let Some(top) = matcher.top_features(5) {
            println!("  top features:");
            for (name, importance) in top {
                println!("    {name:<28} {:>5.1}%", 100.0 * importance);
            }
        }
    }
    Ok(())
}
