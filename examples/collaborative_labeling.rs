//! Collaborative labeling logistics (Section 8 / Section 13): two teams
//! label the same sample, the label store cross-checks them, conflicts are
//! surfaced for the face-to-face discussion, and the settled labels are
//! persisted as the CSV the teams actually exchange.
//!
//! Run with: `cargo run --release --example collaborative_labeling`

use umetrics_em::core::blocking_plan::{run_blocking, BlockingPlan};
use umetrics_em::core::labeling::{accession_of, award_of, sample_unlabeled, LabeledSet};
use umetrics_em::core::labelstore::{LabelRecord, LabelStore, MergePolicy};
use umetrics_em::core::preprocess::{project_umetrics, project_usda};
use umetrics_em::datagen::{Oracle, OracleConfig, PairView, Scenario, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::generate(ScenarioConfig::small())?;
    let u = project_umetrics(&scenario.award_agg, &scenario.employees)?;
    let s = project_usda(&scenario.usda, true)?;
    let candidates = run_blocking(&u, &s, &BlockingPlan::default())?.consolidated;

    // Sample 100 pairs, as in the paper's first labeling round.
    let sample = sample_unlabeled(&candidates, &LabeledSet::new(), 100, 7);
    let oracle = Oracle::new(&scenario.truth, OracleConfig::default());

    // Both teams label the same pairs: the experts with their first-round
    // behaviour (mistakes included), the EM team with its own reading.
    let mut store = LabelStore::new();
    for pair in &sample {
        let award = award_of(&u, pair.left);
        let acc = accession_of(&s, pair.right);
        let urow = u.row(pair.left).unwrap();
        let srow = s.row(pair.right).unwrap();
        let view = PairView {
            award_number: &award,
            accession: &acc,
            left_title: urow.str("AwardTitle").unwrap_or(""),
            right_title: srow.str("AwardTitle").unwrap_or(""),
            right_award_number: srow.str("AwardNumber"),
            right_project_number: srow.str("ProjectNumber"),
        };
        let initial = oracle.label_initial(&view);
        let settled = oracle.label(&view);
        store.record(LabelRecord {
            award: award.clone(),
            accession: acc.clone(),
            label: initial,
            labeler: "umetrics-team".to_string(),
        });
        store.record(LabelRecord {
            award,
            accession: acc,
            label: settled,
            labeler: "em-team".to_string(),
        });
    }

    // The cross-check of Section 8 ("we observed 22 mismatched labels").
    let mismatches = store.cross_check("umetrics-team", "em-team");
    println!("cross-check: {} of {} labels disagree (paper: 22 of 100)", mismatches.len(), sample.len());
    for m in mismatches.iter().take(5) {
        let votes: Vec<String> =
            m.votes.iter().map(|(who, l)| format!("{who}={l}")).collect();
        println!("  {} ↔ {}: {}", m.award, m.accession, votes.join("  "));
    }
    if mismatches.len() > 5 {
        println!("  … {} more (shared via the label CSV, as the teams used Google Sheets)", mismatches.len() - 5);
    }

    // After discussion, merge conservatively: disagreements become Unsure
    // until settled.
    let (merged, conflicts) = store.merge(MergePolicy::UnanimousOrUnsure);
    let unsure = merged.values().filter(|&&l| l == umetrics_em::estimate::Label::Unsure).count();
    println!("\nmerged under unanimous-or-unsure: {} pairs, {} unsettled ({} conflicts recorded)",
        merged.len(), unsure, conflicts.len());

    // Persist: the artifact the teams exchange and re-load next session.
    let path = std::env::temp_dir().join("umetrics-labels.csv");
    store.save(&path)?;
    let reloaded = LabelStore::load(&path)?;
    assert_eq!(store, reloaded);
    println!("\nlabel store persisted to {} and reloaded identically", path.display());

    // And resolve onto table rows for training.
    let labeled = reloaded.to_labeled_set(MergePolicy::UnanimousOrUnsure, &u, &s)?;
    let (y, n, uns) = labeled.counts();
    println!("training view: {y} Yes / {n} No / {uns} Unsure");
    std::fs::remove_file(&path).ok();
    Ok(())
}
