//! Quickstart: match the two toy tables of the paper's Figure 1 with the
//! public API — block, generate features, train a matcher on a handful of
//! labeled pairs, and predict.
//!
//! Run with: `cargo run --example quickstart`

use umetrics_em::blocking::{Blocker, OverlapBlocker, Pair};
use umetrics_em::features::{auto_features, extract_vectors, FeatureOptions};
use umetrics_em::ml::dataset::{impute_mean, Dataset};
use umetrics_em::ml::model::Learner;
use umetrics_em::ml::tree::DecisionTreeLearner;
use umetrics_em::table::csv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1's tables A and B.
    let a = csv::read_str(
        "A",
        "Name,City,State\n\
         Dave Smith,Madison,WI\n\
         Joe Wilson,San Jose,CA\n\
         Dan Smith,Middleton,WI\n",
    )?;
    let b = csv::read_str(
        "B",
        "Name,City,State\n\
         David D. Smith,Madison,WI\n\
         Daniel W. Smith,Middleton,WI\n",
    )?;
    println!("{a}");
    println!("{b}");

    // Block: keep pairs sharing at least one name/city token.
    let blocker = OverlapBlocker::new("Name", "Name", 1);
    let candidates = blocker.block(&a, &b)?;
    println!("candidate pairs after blocking: {}", candidates.len());

    // Features over the shared schema.
    let features = auto_features(&a, &b, &FeatureOptions::default().with_case_insensitive());
    println!("auto-generated features: {}", features.len());

    // A tiny labeled sample (in the real pipeline this comes from experts).
    let labeled = [
        (Pair::new(0, 0), true),  // Dave Smith  ↔ David D. Smith
        (Pair::new(2, 1), true),  // Dan Smith   ↔ Daniel W. Smith
        (Pair::new(0, 1), false), // Dave Smith  ↔ Daniel W. Smith
        (Pair::new(2, 0), false), // Dan Smith   ↔ David D. Smith
    ];
    let pairs: Vec<Pair> = labeled.iter().map(|(p, _)| *p).collect();
    let x = extract_vectors(&features, &a, &b, &pairs)?;
    let mut data = Dataset::new(
        features.names(),
        x,
        labeled.iter().map(|(_, y)| *y).collect(),
    )?;
    let imputer = impute_mean(&mut data);

    // Train and predict every candidate pair.
    let model = DecisionTreeLearner::default().fit(&data)?;
    println!("\npredicted matches:");
    for pair in candidates.iter() {
        let mut row = extract_vectors(&features, &a, &b, &[pair])?.remove(0);
        imputer.transform_row(&mut row);
        if model.predict(&row) {
            let left = a.get(pair.left, "Name").unwrap();
            let right = b.get(pair.right, "Name").unwrap();
            println!("  (a{}, b{})  {left}  ↔  {right}", pair.left + 1, pair.right + 1);
        }
    }
    Ok(())
}
