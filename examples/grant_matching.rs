//! The full UMETRICS/USDA case study, end to end: raw tables → profiling →
//! pre-processing → blocking → labeling → matcher selection → workflows →
//! complications → accuracy estimation → negative rules.
//!
//! This replays Sections 4–12 of the paper on a synthetic scenario and
//! narrates each stage's numbers next to the paper's. Pass `--paper` for
//! the paper-scale scenario (1336 + 496 awards vs 1915 USDA rows; takes a
//! few minutes in debug builds), otherwise a small scenario runs.
//!
//! Run with: `cargo run --release --example grant_matching -- [--paper]`

use umetrics_em::core::pipeline::{CaseStudy, CaseStudyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let cfg = if paper_scale { CaseStudyConfig::paper() } else { CaseStudyConfig::small() };
    eprintln!(
        "running the case study at {} scale…",
        if paper_scale { "paper" } else { "small" }
    );
    let r = CaseStudy::new(cfg).run()?;

    println!("== Section 4: understanding the data (Figure 2) ==");
    for (name, rows, cols) in &r.table_summaries {
        println!("  {name:<32} {rows:>8} rows  {cols:>3} cols");
    }

    println!("\n== Section 7: blocking ==");
    println!("  |C1| (M1 attribute equivalence) = {}", r.c1);
    println!("  |C2| (overlap, K=3)             = {}   (paper: 2937)", r.c2);
    println!("  |C3| (overlap coefficient 0.7)  = {}   (paper: 1375)", r.c3);
    println!("  |C2∩C3| = {}  |C2−C3| = {}  |C3−C2| = {}   (paper: 1140 / 1797 / 235)",
        r.c2_and_c3, r.c2_only, r.c3_only);
    println!("  |C| consolidated                = {}   (paper: 3177)", r.consolidated);
    println!("  threshold sweep: {:?}", r.sweep);
    println!("  blocking recall vs ground truth = {:.1}%", 100.0 * r.blocking_recall);
    println!(
        "  debugger audit: {} of top {} excluded pairs were true matches",
        r.debugger_true_matches, r.debugger_inspected
    );

    println!("\n== Section 8: sampling and labeling ==");
    for (i, round) in r.label_rounds.iter().enumerate() {
        println!(
            "  round {}: {} labeled → {} Yes / {} No / {} Unsure{}",
            i + 1,
            round.sampled,
            round.yes,
            round.no,
            round.unsure,
            if round.crosscheck_mismatches > 0 {
                format!(
                    " ({} cross-check mismatches, {} corrected to Yes)",
                    round.crosscheck_mismatches, round.corrections
                )
            } else {
                String::new()
            }
        );
    }
    let (y, n, u) = r.label_counts;
    println!("  final: {y} Yes / {n} No / {u} Unsure   (paper: 68 / 200 / 32)");
    println!("  leave-one-out label-debug leads: {}", r.label_debug_hits);

    println!("\n== Section 9: matcher selection ==");
    println!("  round 1 (case-sensitive features):");
    for m in &r.selection_round1 {
        println!(
            "    {:<20} P={:>5.1}% R={:>5.1}% F1={:>5.1}%",
            m.name, 100.0 * m.precision, 100.0 * m.recall, 100.0 * m.f1
        );
    }
    println!("  mismatches mined with round-1 winner: {}", r.mismatches_round1);
    println!("  round 2 (+ case-insensitive features):");
    for m in &r.selection_round2 {
        println!(
            "    {:<20} P={:>5.1}% R={:>5.1}% F1={:>5.1}%",
            m.name, 100.0 * m.precision, 100.0 * m.recall, 100.0 * m.f1
        );
    }

    println!("\n== Figure 8: initial workflow ==");
    println!("  sure (M1) = {}   predicted = {}   total = {}   (paper: 210 / 807 / 1017)",
        r.initial_sure, r.initial_predicted, r.initial_total);

    println!("\n== Section 10: complications ==");
    println!("  award=project rule pairs: {} in A×B, {} in C, {} predicted   (paper: 473 / 411 / 397)",
        r.rule2_in_cartesian, r.rule2_in_candidates, r.rule2_predicted);
    let p = &r.patched;
    println!("  patched workflow (Figure 9):");
    println!("    sure matches: {} original + {} extra   (paper: 683 + 55)",
        p.sure_original, p.sure_extra);
    println!("    candidates:   {} original + {} extra   (paper: 2556 + 1220)",
        p.candidates_original, p.candidates_extra);
    println!("    predicted:    {} original + {} extra   (paper: 399 + 0)",
        p.predicted_original, p.predicted_extra);
    println!("    total matches = {}   (paper: 1137)", p.total);

    println!("\n== Section 11: Corleone accuracy estimation ==");
    for e in &r.estimates {
        println!(
            "  {:<16} @{:>3} labels: P∈{} R∈{}",
            e.matcher, e.n_labels, e.estimate.precision, e.estimate.recall
        );
    }

    println!("\n== Section 12: negative rules (Figure 10) ==");
    for e in &r.final_estimates {
        println!(
            "  {:<16} @{:>3} labels: P∈{} R∈{}",
            e.matcher, e.n_labels, e.estimate.precision, e.estimate.recall
        );
    }
    println!("  predictions flipped by negative rules: {}", r.flipped);
    println!("  final matches = {}   (paper: 845)", r.final_total);

    println!("\n== Ground truth (generator privilege; the paper could not do this) ==");
    for (name, s) in &r.truth_scores {
        println!(
            "  {:<16} P={:>5.1}% R={:>5.1}% F1={:>5.1}%  (tp={} fp={} fn={})",
            name,
            100.0 * s.precision,
            100.0 * s.recall,
            100.0 * s.f1,
            s.tp,
            s.fp,
            s.fn_
        );
    }
    Ok(())
}
