//! Offline drop-in subset of the `crossbeam` scoped-thread API.
//!
//! The build environment has no access to crates.io; this crate re-creates
//! the `crossbeam::scope` entry point on top of `std::thread::scope`
//! (available since Rust 1.63), which provides the same borrow-from-the-
//! enclosing-stack guarantee. Threads are real: workloads still fan out
//! across cores.

#![warn(missing_docs)]

use std::any::Any;

/// Result type of [`scope`]: `Err` carries a panic payload when the scope
/// body itself panicked. (Panics in spawned threads surface through
/// [`ScopedJoinHandle::join`], as in crossbeam.)
pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// A scope in which threads borrowing the enclosing stack can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to the enclosing [`scope`] call. The closure
    /// receives the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope for spawning threads that may borrow the caller's stack.
/// All spawned threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Namespaced alias mirroring `crossbeam::thread::scope`.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = super::scope(|s| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = s.spawn(move |_| a.iter().sum::<u64>());
            let hb = s.spawn(move |_| b.iter().sum::<u64>());
            ha.join().unwrap() + hb.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
