//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *interface* it actually uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` and
//! `seq::SliceRandom::shuffle` — backed by a xoshiro256++ generator seeded
//! through SplitMix64. Everything is deterministic in the seed; the exact
//! stream differs from upstream `rand`, which is fine because every consumer
//! in this workspace treats the RNG as an opaque seeded source.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core every adapter builds on.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Standard generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Types that `Rng::gen` can produce from uniform bits.
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by multiply-shift; `span > 0`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform bits / unit interval).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related adapters.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, deterministic in the
        /// generator state).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let x = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(5);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "49! permutations; identity is astronomically unlikely");
    }
}
