//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the interface the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box` — backed by a simple
//! wall-clock harness: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints min/mean/max per iteration.
//! No statistics, plots, or baselines; enough to compare hot paths locally.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Types accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Converts into the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (printing already happened per benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: one untimed sample of a single iteration.
        let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut warm);

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed.max(Duration::from_nanos(1)) / b.iters.max(1) as u32);
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!(
            "{}/{:<40} samples: {:>3}  min: {:>12?}  mean: {:>12?}  max: {:>12?}",
            self.name, id, self.sample_size, min, mean, max
        );
    }
}

/// Declares a benchmark group function that runs its targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("count", |b| {
                runs += 1;
                b.iter(|| black_box(1 + 1));
            });
            g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| {
                b.iter(|| black_box(n * 2));
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
