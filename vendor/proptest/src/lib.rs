//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-creates the slice of proptest this workspace uses: the `proptest!`
//! macro with `ident in strategy` bindings and an optional
//! `#![proptest_config(..)]` header, `prop_assert*` / `prop_assume!` /
//! `prop_oneof!`, `Strategy::prop_map`, `Just`, numeric range strategies,
//! tuple strategies, `collection::vec`, `option::of`, `sample::select`,
//! and a mini `string::string_regex` that understands character classes
//! with `{m,n}` quantifiers (the only regex shape used in our tests).
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated seed and the
//!   assertion message, not a minimised input.
//! - Generation is driven by a fixed per-test seed (hash of file and
//!   line), so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy mapping combinator; see [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].gen_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> AnyPrimitive<$t> {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_prim! {
    bool => |r| r.next_u64() & 1 == 1,
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u64() as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u64() as i8,
    i16 => |r| r.next_u64() as i16,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
    isize => |r| r.next_u64() as isize,
    f64 => |r| r.unit_f64() * 2e6 - 1e6,
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` element-count bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below(self.max - self.min + 1)
            };
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }

    /// Wraps a strategy's values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// Picks uniformly from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }
}

/// String strategies.
pub mod string {
    use super::{Strategy, TestRng};

    /// Error from [`string_regex`] on an unsupported pattern.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a simple regex.
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = if atom.min == atom.max {
                    atom.min
                } else {
                    atom.min + rng.below(atom.max - atom.min + 1)
                };
                for _ in 0..n {
                    out.push(atom.chars[rng.below(atom.chars.len())]);
                }
            }
            out
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
        let mut set: Vec<char> = Vec::new();
        loop {
            let c = chars.next().ok_or_else(|| Error("unterminated character class".into()))?;
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    set.push(unescape(e));
                }
                _ => {
                    // Range `a-z` when '-' is followed by a non-']' char.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&']') | None => set.push(c),
                            Some(&hi) => {
                                chars.next();
                                chars.next();
                                if hi < c {
                                    return Err(Error(format!("invalid range {c}-{hi}")));
                                }
                                for x in c as u32..=hi as u32 {
                                    if let Some(ch) = char::from_u32(x) {
                                        set.push(ch);
                                    }
                                }
                            }
                        }
                    } else {
                        set.push(c);
                    }
                }
            }
        }
        if set.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(set)
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<(usize, usize), Error> {
        if chars.peek() != Some(&'{') {
            return Ok((1, 1));
        }
        chars.next();
        let mut body = String::new();
        loop {
            match chars.next() {
                Some('}') => break,
                Some(c) => body.push(c),
                None => return Err(Error("unterminated quantifier".into())),
            }
        }
        let parse = |s: &str| s.trim().parse::<usize>().map_err(|_| Error(format!("bad quantifier {body:?}")));
        match body.split_once(',') {
            None => {
                let n = parse(&body)?;
                Ok((n, n))
            }
            Some((lo, hi)) => {
                let lo = parse(lo)?;
                let hi = parse(hi)?;
                if hi < lo {
                    return Err(Error(format!("inverted quantifier {body:?}")));
                }
                Ok((lo, hi))
            }
        }
    }

    /// Builds a generator for strings matching `pattern`. Supported syntax:
    /// character classes (`[a-z0-9.\n-]`), single literal characters,
    /// escapes, and `{n}` / `{m,n}` quantifiers — the shapes used by this
    /// workspace's tests.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => vec![unescape(
                    chars.next().ok_or_else(|| Error("dangling escape".into()))?,
                )],
                '(' | ')' | '|' | '*' | '+' | '?' | '^' | '$' => {
                    return Err(Error(format!("unsupported regex construct {c:?} in {pattern:?}")))
                }
                _ => vec![c],
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            atoms.push(Atom { chars: set, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the test should fail.
    Fail(String),
    /// The case was vetoed by `prop_assume!`; try another.
    Reject(String),
}

/// Drives the generated cases for one property; panics on failure.
/// The seed derives from `file`/`line`, so failures reproduce across runs.
pub fn run_cases<F>(config: ProptestConfig, file: &str, line: u32, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in file.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    seed = (seed ^ line as u64).wrapping_mul(0x100000001b3);

    let mut rng = TestRng::seed(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.cases.saturating_mul(16) + 1024 {
                    panic!(
                        "[{file}:{line}] too many prop_assume! rejections ({rejected}); last: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "[{file}:{line}] property failed after {passed} passing case(s) \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header and functions whose arguments are
/// `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__config, file!(), line!(), |__proptest_rng| {
                    $(
                        let $arg = $crate::Strategy::gen_value(&($strat), __proptest_rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// mid-generation) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), __l, format!($($fmt)+)
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn string_regex_matches_shape() {
        let strat = crate::string::string_regex("[A-Z0-9.-]{1,20}").unwrap();
        let mut rng = TestRng::seed(1);
        for _ in 0..200 {
            let s = Strategy::gen_value(&strat, &mut rng);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '.' || c == '-'), "{s:?}");
        }
        // Escapes and literals outside classes.
        let strat = crate::string::string_regex("[ -~\n\"]{0,12}").unwrap();
        for _ in 0..200 {
            let s = Strategy::gen_value(&strat, &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)), "{s:?}");
        }
        let lit = crate::string::string_regex("ab[0-9]{2}").unwrap();
        let s = Strategy::gen_value(&lit, &mut rng);
        assert!(s.starts_with("ab") && s.len() == 4, "{s:?}");
        assert!(crate::string::string_regex("(a|b)*").is_err());
    }

    #[test]
    fn ranges_tuples_collections_in_bounds() {
        let mut rng = TestRng::seed(2);
        let strat = (0usize..8, -10.0f64..10.0, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = Strategy::gen_value(&strat, &mut rng);
            assert!(a < 8);
            assert!((-10.0..10.0).contains(&b));
        }
        let v = Strategy::gen_value(&crate::collection::vec(0u64..5, 3usize), &mut rng);
        assert_eq!(v.len(), 3);
        let v = Strategy::gen_value(&crate::collection::vec(0u64..5, 1..4), &mut rng);
        assert!((1..4).contains(&v.len()));
        let picked = Strategy::gen_value(&crate::sample::select(vec!["x", "y"]), &mut rng);
        assert!(picked == "x" || picked == "y");
        let one = Strategy::gen_value(&prop_oneof![Just(0.3f64), Just(0.7f64)], &mut rng);
        assert!(one == 0.3 || one == 0.7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires bindings, assumptions and assertions together.
        #[test]
        fn macro_end_to_end(x in 1usize..50, y in any::<u64>(), s in crate::string::string_regex("[a-z]{1,5}").unwrap()) {
            prop_assume!(x != 13);
            prop_assert!(x >= 1 && x < 50);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(s.len(), 0);
            let _ = y;
        }
    }

    proptest! {
        /// Default-config arm compiles and runs too.
        #[test]
        fn macro_default_config(pair in (any::<bool>(), 0i64..3).prop_map(|(b, i)| (b, i * 2))) {
            prop_assert!(pair.1 % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_seed() {
        crate::run_cases(ProptestConfig::with_cases(8), file!(), line!(), |rng| {
            let v = Strategy::gen_value(&(0usize..100), rng);
            crate::prop_assert!(v < 2, "v was {}", v);
            Ok(())
        });
    }
}
