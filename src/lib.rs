//! # umetrics-em — executing entity matching end to end
//!
//! A from-scratch Rust reproduction of *Executing Entity Matching End to
//! End: A Case Study* (Konda et al., EDBT 2019): the PyMatcher-style EM
//! toolkit, the UMETRICS/USDA grant-matching case study it was exercised
//! on, and the full experimental harness.
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! - [`table`] — typed in-memory tables, CSV I/O, profiling
//! - [`text`] — tokenizers and string-similarity measures
//! - [`blocking`] — blockers, candidate-set algebra, blocking debugger
//! - [`features`] — automatic feature generation and extraction
//! - [`ml`] — six classifiers, cross-validation, metrics, debugging
//! - [`rules`] — pattern language, positive/negative rules, IRIS baseline
//! - [`estimate`] — labels and Corleone-style accuracy estimation
//! - [`datagen`] — the synthetic UMETRICS/USDA scenario and labeling oracle
//! - [`core`] — the end-to-end pipeline and workflow engine
//! - [`parallel`] — the deterministic scoped-thread executor behind the
//!   blocking, feature-extraction, and ML hot loops
//! - [`serve`] — online matching over frozen workflow snapshots: versioned
//!   snapshot artifacts, per-arrival and micro-batch serving, bounded
//!   admission queue
//!
//! ## Quickstart
//!
//! ```
//! use umetrics_em::core::pipeline::{CaseStudy, CaseStudyConfig};
//!
//! // Replay the entire case study on a small synthetic scenario.
//! let report = CaseStudy::new(CaseStudyConfig::small()).run().unwrap();
//! println!("final matches: {}", report.final_total);
//! assert!(report.final_total > 0);
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/bench` for the
//! paper-reproduction harness (`cargo run -p em-bench --bin reproduce`).

#![warn(missing_docs)]

pub use em_blocking as blocking;
pub use em_core as core;
pub use em_datagen as datagen;
pub use em_estimate as estimate;
pub use em_features as features;
pub use em_ml as ml;
pub use em_parallel as parallel;
pub use em_rules as rules;
pub use em_serve as serve;
pub use em_table as table;
pub use em_text as text;
