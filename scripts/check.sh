#!/usr/bin/env bash
# Pre-PR gate: build, test, lint. All three must pass.
#
#   scripts/check.sh [--offline]
#
# Mirrors what CI runs; `--offline` (the default in the dev container)
# forbids registry access — all dependencies are vendored.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--offline)
if [[ "${1:-}" == "--online" ]]; then
    CARGO_FLAGS=()
fi

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --release

echo "==> cargo test"
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings

echo "==> kernel hot-path purity (no per-pair decode/lowercase)"
for f in crates/text/src/seq.rs crates/text/src/myers.rs crates/text/src/scratch.rs; do
    # Non-test code only: stop at the #[cfg(test)] module.
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
        | grep -nE 'chars\(\)\.collect|to_lowercase'; then
        echo "    FAIL: per-pair decode/lowercase in $f" >&2
        exit 1
    fi
done
echo "    kernel modules clean"

echo "==> feature_kernels criterion bench (smoke)"
EM_BENCH_SMOKE=1 cargo bench "${CARGO_FLAGS[@]}" -p em-bench --bench feature_kernels >/dev/null
echo "    feature_kernels bench ran"

echo "==> em-serve snapshot round-trip gate"
# Every test whose name mentions snapshots: encode/decode fixed point,
# bit-identical serving after a save/load round-trip, quarantine-on-corrupt.
cargo test "${CARGO_FLAGS[@]}" -q -p em-serve snapshot
echo "    snapshot round-trip ok"

echo "==> reproduce --bench --serve smoke (small scale, 2 threads)"
BENCH_DIR=$(mktemp -d)
trap 'rm -rf "$BENCH_DIR"' EXIT
(cd "$BENCH_DIR" && "$OLDPWD/target/release/reproduce" --bench --serve --threads 2 >/dev/null)
python3 - "$BENCH_DIR/BENCH_pipeline.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for key, kind in [("scale", str), ("seed", int), ("threads", int),
                  ("candidate_pairs", int), ("stages", list),
                  ("total_wall_ms_1t", float), ("total_wall_ms_nt", float),
                  ("combined_speedup", float)]:
    assert isinstance(doc.get(key), kind), f"bad/missing {key!r}"
assert doc["stages"], "no stages timed"
for stage in doc["stages"]:
    for key, kind in [("name", str), ("items", int), ("wall_ms_1t", float),
                      ("wall_ms_nt", float), ("speedup", float),
                      ("throughput_per_s", float)]:
        assert isinstance(stage.get(key), kind), f"stage missing {key!r}: {stage}"
    assert stage["wall_ms_1t"] > 0 and stage["wall_ms_nt"] > 0, f"non-positive timing: {stage}"
names = {stage["name"] for stage in doc["stages"]}
for required in ("feature_extraction", "feature_kernels", "serve_batch", "serve_single"):
    assert required in names, f"stage {required!r} missing from bench JSON (got {sorted(names)})"
print(f"    BENCH_pipeline.json ok: {len(doc['stages'])} stages, "
      f"combined speedup {doc['combined_speedup']:.2f}x at {doc['threads']} threads")
EOF

echo "==> all checks passed"
