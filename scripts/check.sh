#!/usr/bin/env bash
# Pre-PR gate: build, test, lint. All three must pass.
#
#   scripts/check.sh [--offline]
#
# Mirrors what CI runs; `--offline` (the default in the dev container)
# forbids registry access — all dependencies are vendored.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--offline)
if [[ "${1:-}" == "--online" ]]; then
    CARGO_FLAGS=()
fi

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --release

echo "==> cargo test"
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings

echo "==> kernel hot-path purity (no per-pair decode/lowercase)"
for f in crates/text/src/seq.rs crates/text/src/myers.rs crates/text/src/scratch.rs; do
    # Non-test code only: stop at the #[cfg(test)] module.
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
        | grep -nE 'chars\(\)\.collect|to_lowercase'; then
        echo "    FAIL: per-pair decode/lowercase in $f" >&2
        exit 1
    fi
done
echo "    kernel modules clean"

echo "==> serve hot-loop allocation purity (no Vec::new/String::from)"
# The steady-state request loop must reuse ProbeScratch buffers; heap
# allocation is confined to the scratch-construction section at the bottom
# of hot.rs (and to per-match id rendering, which never names these ctors).
if awk '/---- scratch construction/{exit} {print}' crates/serve/src/hot.rs \
    | grep -nE 'Vec::new|String::from'; then
    echo "    FAIL: allocation in the serve hot loop (crates/serve/src/hot.rs)" >&2
    exit 1
fi
echo "    serve hot loop clean"

echo "==> join probe allocation purity (no Vec::new/String::from)"
# The counting-walk probe must run entirely on reusable JoinScratch
# buffers; heap allocation is confined to the scratch-construction and
# index-build section at the bottom of join.rs.
if awk '/---- scratch construction/{exit} {print}' crates/blocking/src/join.rs \
    | grep -nE 'Vec::new|String::from'; then
    echo "    FAIL: allocation in the join probe hot loop (crates/blocking/src/join.rs)" >&2
    exit 1
fi
echo "    join probe hot loop clean"

echo "==> stream executor allocation purity (no Vec::new/String::from)"
# The fused probe -> extract -> impute -> score -> rules loop must run
# entirely on reusable StreamScratch buffers; heap allocation is confined
# to the scratch-construction and executor-build section at the bottom of
# stream.rs.
if awk '/---- scratch construction/{exit} {print}' crates/core/src/stream.rs \
    | grep -nE 'Vec::new|String::from'; then
    echo "    FAIL: allocation in the stream match hot loop (crates/core/src/stream.rs)" >&2
    exit 1
fi
echo "    stream match hot loop clean"

echo "==> serve fault-path panic hygiene (no unwrap/expect/panic! outside tests)"
# The WAL, swap, overload, and chaos modules are the crash-recovery
# surface, and the shard/sched/loadgen modules sit on the same serving
# path: every failure must be a typed ServeError, never a panic.
for f in crates/serve/src/wal.rs crates/serve/src/swap.rs \
         crates/serve/src/overload.rs crates/serve/src/chaos.rs \
         crates/serve/src/shard.rs crates/serve/src/sched.rs \
         crates/serve/src/loadgen.rs; do
    # Non-test code only: stop at the #[cfg(test)] module.
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
        | grep -nE '\.unwrap\(|\.expect\(|panic!'; then
        echo "    FAIL: panic path in fault-handling module $f" >&2
        exit 1
    fi
done
echo "    serve fault modules panic-free"

echo "==> label subsystem panic hygiene (no unwrap/expect/panic! outside tests)"
# Active learning and weak supervision sit on the fallible oracle path:
# every failure must be a typed CoreError, never a panic.
for f in crates/label/src/*.rs; do
    # Non-test code only: stop at the #[cfg(test)] module.
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
        | grep -nE '\.unwrap\(|\.expect\(|panic!'; then
        echo "    FAIL: panic path in label module $f" >&2
        exit 1
    fi
done
echo "    label modules panic-free"

echo "==> feature_kernels criterion bench (smoke)"
EM_BENCH_SMOKE=1 cargo bench "${CARGO_FLAGS[@]}" -p em-bench --bench feature_kernels >/dev/null
echo "    feature_kernels bench ran"

echo "==> match_stream criterion bench (smoke)"
EM_BENCH_SMOKE=1 cargo bench "${CARGO_FLAGS[@]}" -p em-bench --bench match_stream >/dev/null
echo "    match_stream bench ran"

echo "==> em-serve snapshot round-trip gate"
# Every test whose name mentions snapshots: encode/decode fixed point,
# bit-identical serving after a save/load round-trip, quarantine-on-corrupt.
cargo test "${CARGO_FLAGS[@]}" -q -p em-serve snapshot
echo "    snapshot round-trip ok"

echo "==> seeded serve-chaos gate (2 fixed seeds, bit-identity + zero panics)"
# Each run must exit 0 (any panic or divergence is a nonzero exit) and
# print the bit-identity marker line from the post-run audit.
for seed in 7 20190326; do
    CHAOS_OUT=$(target/release/reproduce --serve-chaos --seed "$seed" 2>/dev/null)
    if ! grep -q "bit-identical to the fault-free run" <<<"$CHAOS_OUT"; then
        echo "    FAIL: chaos run at seed $seed did not certify bit-identity" >&2
        exit 1
    fi
done
echo "    chaos schedules clean at both seeds"

echo "==> label-efficiency gate (2 fixed seeds: AL budget bound + zero-label weak run)"
# Each run must certify that query-by-committee reached the random arm's
# final F1 within the 50% budget bound, and that the weak-supervision arm
# never touched the oracle.
for seed in 7 20190326; do
    LABEL_OUT=$(target/release/reproduce --active --weak --seed "$seed" 2>/dev/null)
    if ! grep -q "acceptance: PASS" <<<"$LABEL_OUT"; then
        echo "    FAIL: active learning at seed $seed missed the label-budget bound" >&2
        exit 1
    fi
    if ! grep -q "trained with 0 oracle labels" <<<"$LABEL_OUT"; then
        echo "    FAIL: weak supervision at seed $seed consumed oracle labels" >&2
        exit 1
    fi
done
echo "    label-efficiency bounds hold at both seeds"

echo "==> reproduce --bench --serve --serve-chaos --serve-load smoke (small scale, 2 threads)"
BENCH_DIR=$(mktemp -d)
trap 'rm -rf "$BENCH_DIR"' EXIT
(cd "$BENCH_DIR" && "$OLDPWD/target/release/reproduce" --bench --serve --serve-chaos --serve-load --scaling 1 --scaling-match 1 --active --weak --threads 2 >/dev/null)
python3 - "$BENCH_DIR/BENCH_pipeline.json" BENCH_pipeline.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for key, kind in [("scale", str), ("seed", int), ("threads", int),
                  ("available_parallelism", int), ("em_threads", int),
                  ("candidate_pairs", int), ("stages", list),
                  ("total_wall_ms_1t", float), ("total_wall_ms_nt", float),
                  ("combined_speedup", float)]:
    assert isinstance(doc.get(key), kind), f"bad/missing {key!r}"
assert doc["available_parallelism"] >= 1 and doc["em_threads"] >= 1
assert doc["stages"], "no stages timed"
for stage in doc["stages"]:
    for key, kind in [("name", str), ("items", int), ("wall_ms_1t", float),
                      ("wall_ms_nt", float), ("speedup", float),
                      ("throughput_per_s", float)]:
        assert isinstance(stage.get(key), kind), f"stage missing {key!r}: {stage}"
    assert stage["wall_ms_1t"] > 0 and stage["wall_ms_nt"] > 0, f"non-positive timing: {stage}"
names = {stage["name"] for stage in doc["stages"]}
for required in ("blocking", "feature_extraction", "feature_kernels", "serve_batch",
                 "serve_single", "serve_single_hot"):
    assert required in names, f"stage {required!r} missing from bench JSON (got {sorted(names)})"

serve = doc.get("serve")
assert isinstance(serve, dict), "missing serve summary block"
for key, kind in [("mask_live", int), ("mask_total", int),
                  ("cold_first_request_ms", float), ("warm_per_record_ms", float),
                  ("candidates_total", int), ("candidates_max", int)]:
    assert isinstance(serve.get(key), kind), f"serve block missing {key!r}"
assert 0 < serve["mask_live"] <= serve["mask_total"], "feature mask out of range"

chaos = doc.get("serve_chaos")
assert isinstance(chaos, dict), "missing serve_chaos block"
for key, kind in [("seed", int), ("arrivals", int), ("completed", int),
                  ("shed", int), ("retried", int), ("queue_full", int),
                  ("degraded", int), ("crashes", int), ("recoveries", int),
                  ("wal_records_replayed", int), ("torn_tails_repaired", int),
                  ("swaps", int), ("swap_rollbacks", int),
                  ("snapshots_quarantined", int), ("recovery_ms_total", float),
                  ("recovery_ms_max", float), ("swap_latency_ms_max", float),
                  ("bit_identical", bool), ("terminal_outcomes", bool),
                  ("final_epoch", int), ("shards", int), ("shard_probes", int),
                  ("shard_identical", bool)]:
    assert isinstance(chaos.get(key), kind), f"serve_chaos block missing {key!r}"
assert chaos["bit_identical"], "chaos outcomes diverged from the fault-free run"
assert chaos["terminal_outcomes"], "a chaos request never reached a terminal outcome"
assert chaos["completed"] + chaos["shed"] == chaos["arrivals"], \
    "chaos accounting identity violated: completed + shed != arrivals"
assert chaos["recoveries"] == chaos["crashes"] + 1, \
    "every crash plus the final audit must recover exactly once"
assert chaos["shards"] >= 1 and chaos["shard_probes"] == chaos["arrivals"], \
    "chaos sharded audit did not replay every arrival"
assert chaos["shard_identical"], "chaos sharded replay diverged from the fault-free run"

# Sharded serve-load sweep: both the smoke run (--serve-load) and the
# committed artifact must carry a well-formed serve_load block — the
# seeded open-loop rate sweep at shard counts 1/2/4 with virtual-time
# latency percentiles and per-sweep saturation throughput.
def check_serve_load(d, where):
    sl = d.get("serve_load")
    assert isinstance(sl, dict), f"missing serve_load block in {where}"
    for key, kind in [("seed", int), ("requests_per_rate", int),
                      ("available_parallelism", int), ("batch_max", int),
                      ("batch_deadline_ms", float), ("shed_watermark", int),
                      ("calibrated_1shard_per_s", float),
                      ("speedup_4x_vs_1x", float), ("sweeps", list)]:
        assert isinstance(sl.get(key), kind), f"serve_load block bad {key!r} in {where}"
    assert sl["requests_per_rate"] > 0 and sl["calibrated_1shard_per_s"] > 0
    shard_counts = []
    for sw in sl["sweeps"]:
        for key, kind in [("shards", int), ("saturation_per_s", float),
                          ("size_closed", int), ("deadline_closed", int),
                          ("occupancy_at_top_rate", list), ("runs", list)]:
            assert isinstance(sw.get(key), kind), f"serve_load sweep bad {key!r} in {where}"
        shard_counts.append(sw["shards"])
        assert sw["saturation_per_s"] > 0, f"non-positive saturation in {where}"
        assert len(sw["occupancy_at_top_rate"]) == sw["shards"], \
            f"occupancy vector does not cover every shard in {where}"
        assert sw["size_closed"] + sw["deadline_closed"] > 0, \
            f"no batch-close triggers attributed in {where}"
        for r in sw["runs"]:
            for key, kind in [("offered_per_s", float), ("achieved_per_s", float),
                              ("arrivals", int), ("completed", int), ("shed", int),
                              ("p50_ms", float), ("p99_ms", float), ("p999_ms", float),
                              ("max_ms", float), ("batches", int),
                              ("mean_batch_rows", float), ("size_closed", int),
                              ("deadline_closed", int), ("flush_closed", int)]:
                assert isinstance(r.get(key), kind), f"serve_load run bad {key!r} in {where}: {r}"
            assert r["completed"] + r["shed"] == r["arrivals"], \
                f"serve_load admission ledger leaked in {where}: {r}"
            assert r["p50_ms"] <= r["p99_ms"] <= r["p999_ms"] <= r["max_ms"], \
                f"serve_load percentiles out of order in {where}: {r}"
    assert shard_counts == [1, 2, 4], f"serve_load sweeps must cover shards 1/2/4 in {where}"
    return sl
def saturation(sl, shards):
    return next(sw["saturation_per_s"] for sw in sl["sweeps"] if sw["shards"] == shards)

# Throughput regression gate: the smoke run is *small* scale while the
# committed JSON is x4, and per-record serving is strictly faster on the
# smaller corpus — so requiring the smoke throughput to stay within 20%
# of (in practice, far above) the committed x4 figure only ever fires on
# a real serve-path regression, never on the scale difference.
with open(sys.argv[2]) as f:
    committed = json.load(f)

smoke_sl = check_serve_load(doc, "smoke run")
committed_sl = check_serve_load(committed, "committed BENCH_pipeline.json")
# Sharding speedup gate on the committed x4 artifact: splitting the
# corpus 4 ways must at least halve the per-request service time, i.e.
# 4-shard saturation >= 2x the 1-shard value.
sat1, sat4 = saturation(committed_sl, 1), saturation(committed_sl, 4)
assert sat4 >= 2.0 * sat1, (
    f"committed 4-shard saturation below 2x: {sat4:.0f}/s vs 1-shard {sat1:.0f}/s")
assert committed_sl["speedup_4x_vs_1x"] >= 2.0, (
    f"committed serve_load speedup_4x_vs_1x below 2x: {committed_sl['speedup_4x_vs_1x']:.2f}")
# Saturation regression gate: same small-vs-x4 logic as serve_single —
# the smoke tier is strictly faster per record, so staying above 0.95x
# the committed x4 saturation only ever fires on a real regression.
smoke_sat1 = saturation(smoke_sl, 1)
assert smoke_sat1 >= 0.95 * sat1, (
    f"serve_load saturation regressed: smoke 1-shard {smoke_sat1:.0f}/s "
    f"vs committed {sat1:.0f}/s")
def tp(d, name):
    return next(s["throughput_per_s"] for s in d["stages"] if s["name"] == name)
fresh, pinned = tp(doc, "serve_single"), tp(committed, "serve_single")
assert fresh >= 0.8 * pinned, (
    f"serve_single throughput regressed: {fresh:.0f}/s vs committed {pinned:.0f}/s")

# Corpus-scale blocking: both the smoke run (--scaling 1) and the committed
# artifact (x1..x256) must carry a well-formed scaling block with strictly
# ascending factors.
def check_scaling(d, where):
    sc = d.get("scaling")
    assert isinstance(sc, list) and sc, f"missing scaling block in {where}"
    prev = 0.0
    for st in sc:
        for key, kind in [("factor", (int, float)), ("left_rows", int),
                          ("right_rows", int), ("gen_ms", float), ("wall_ms", float),
                          ("join_pairs", int), ("consolidated", int),
                          ("checksum", str), ("cand_per_s", float),
                          ("peak_rss_mib", float)]:
            assert isinstance(st.get(key), kind), f"scaling stage bad {key!r} in {where}: {st}"
        assert st["factor"] > prev, f"scaling factors not ascending in {where}"
        prev = st["factor"]
        assert st["checksum"].startswith("0x") and int(st["checksum"], 16) >= 0, \
            f"malformed candidate-set checksum in {where}: {st['checksum']!r}"
        assert st["left_rows"] > 0 and st["right_rows"] > 0
        assert st["wall_ms"] > 0 and st["cand_per_s"] > 0 and st["peak_rss_mib"] > 0
        assert st["consolidated"] >= st["join_pairs"], \
            f"consolidated |C1∪C2∪C3| below the C2∪C3 join-pair count in {where}"
check_scaling(doc, "smoke run")
check_scaling(committed, "committed BENCH_pipeline.json")

# Fused end-to-end streaming match: both the smoke run (--scaling-match 1)
# and the committed artifact must carry a well-formed scaling_match block
# with strictly ascending factors and non-trivial match output.
def check_scaling_match(d, where):
    sc = d.get("scaling_match")
    assert isinstance(sc, list) and sc, f"missing scaling_match block in {where}"
    prev = 0.0
    for st in sc:
        for key, kind in [("factor", (int, float)), ("left_rows", int),
                          ("right_rows", int), ("gen_ms", float), ("wall_ms", float),
                          ("candidates", int), ("predicted", int), ("flipped", int),
                          ("matched", int), ("pairs_per_s", float), ("checksum", str),
                          ("mask_live", int), ("mask_total", int),
                          ("peak_rss_mib", float)]:
            assert isinstance(st.get(key), kind), f"scaling_match stage bad {key!r} in {where}: {st}"
        assert st["factor"] > prev, f"scaling_match factors not ascending in {where}"
        prev = st["factor"]
        assert st["checksum"].startswith("0x") and int(st["checksum"], 16) >= 0, \
            f"malformed match checksum in {where}: {st['checksum']!r}"
        assert st["left_rows"] > 0 and st["right_rows"] > 0
        assert st["wall_ms"] > 0 and st["pairs_per_s"] > 0 and st["peak_rss_mib"] > 0
        assert 0 < st["mask_live"] <= st["mask_total"], f"match feature mask out of range in {where}"
        assert st["matched"] > 0, f"streaming match produced no matches in {where}: {st}"
        assert st["predicted"] + st["flipped"] <= st["candidates"], \
            f"scaling_match accounting out of range in {where}: {st}"
    return sc
check_scaling_match(doc, "smoke run")
committed_match = check_scaling_match(committed, "committed BENCH_pipeline.json")

# Label-efficient training: the smoke run carries --active --weak, so its
# artifact must hold a well-formed label_efficiency block with both
# 10-round curves, the budget-bound accounting, and a zero-oracle-label
# weak-supervision summary. (The committed x4 artifact intentionally has
# no block: the experiment runs on its own pinned quarter-scale pool.)
le = doc.get("label_efficiency")
assert isinstance(le, dict), "missing label_efficiency block in smoke run"
for key, kind in [("seed", int), ("pool_scale", float), ("candidates", int),
                  ("positives", int), ("target_f1", float),
                  ("random_labels_total", int), ("al_labels_to_target", int),
                  ("al_target_fraction", float), ("random", list),
                  ("active", list), ("weak", dict)]:
    assert isinstance(le.get(key), kind), f"label_efficiency block missing {key!r}"
assert 0 < le["positives"] < le["candidates"], "degenerate label pool"
for arm in ("random", "active"):
    prev = -1
    for row in le[arm]:
        for key, kind in [("round", int), ("labels", int), ("queries", int),
                          ("retries", int), ("degraded", int), ("f1", float),
                          ("precision_lo", float), ("precision_hi", float),
                          ("recall_lo", float), ("recall_hi", float)]:
            assert isinstance(row.get(key), kind), f"{arm} curve row bad {key!r}: {row}"
        assert row["round"] == prev + 1, f"{arm} curve rounds not contiguous"
        prev = row["round"]
        assert 0 < row["labels"] <= row["queries"], f"{arm} ledger identity violated: {row}"
        assert 0.0 <= row["f1"] <= 1.0
        assert row["precision_lo"] <= row["precision_hi"], f"inverted interval: {row}"
        assert row["recall_lo"] <= row["recall_hi"], f"inverted interval: {row}"
assert le["al_labels_to_target"] <= le["al_target_fraction"] * le["random_labels_total"], \
    "active learning missed the label-budget bound in the smoke run"
weak = le["weak"]
for key, kind in [("n_lfs", int), ("coverage", float), ("conflicts", int),
                  ("kept", int), ("oracle_labels", int), ("em_iterations", int),
                  ("f1_majority", float), ("f1_label_model", float), ("f1", float),
                  ("precision_lo", float), ("precision_hi", float),
                  ("recall_lo", float), ("recall_hi", float)]:
    assert isinstance(weak.get(key), kind), f"weak block missing {key!r}"
assert weak["oracle_labels"] == 0, "weak supervision consumed oracle labels"
assert weak["kept"] > 0 and weak["coverage"] > 0.0, "weak training set is empty"
assert weak["n_lfs"] >= 2, "fewer than two labeling functions applied"

# The tentpole memory bound: the committed artifact must carry an x64
# end-to-end match row, streamed in bounded memory. (scaling_match runs
# before the blocking sweep in-process, so VmHWM reflects the executor.)
x64 = next((s for s in committed_match if s["factor"] == 64), None)
assert x64 is not None, "committed scaling_match is missing the x64 row"
assert x64["peak_rss_mib"] <= 2048.0, (
    f"x64 streaming match exceeded the 2 GiB bound: {x64['peak_rss_mib']:.0f} MiB")

# Blocking perf gates on the committed x4 artifact. The join rewrite must
# hold >= 5x over the pre-rewrite 697.058 ms single-thread baseline, and
# the deterministic parallel split must keep 2 threads within 5% of the
# single-thread run (this box has one core, so speedup > 1 is unreachable;
# the gate catches a split that *costs* more than it can ever win back).
blocking = next(s for s in committed["stages"] if s["name"] == "blocking")
assert blocking["wall_ms_1t"] <= 139.4, (
    f"blocking regressed below 5x: {blocking['wall_ms_1t']:.1f} ms vs 139.4 ms budget")
assert blocking["speedup"] >= 0.95, (
    f"blocking 2-thread speedup gate: {blocking['speedup']:.3f} < 0.95")

# Feature-extraction perf gate on the committed x4 artifact: the masked
# batched path (BatchExtractor + derive_feature_mask) must hold >= 3x over
# the pre-rework 604.969 ms single-thread full-46-feature baseline.
feat = next(s for s in committed["stages"] if s["name"] == "feature_extraction")
assert feat["wall_ms_1t"] <= 202.0, (
    f"feature_extraction regressed below 3x: {feat['wall_ms_1t']:.1f} ms vs 202.0 ms budget")

print(f"    BENCH_pipeline.json ok: {len(doc['stages'])} stages, "
      f"combined speedup {doc['combined_speedup']:.2f}x at {doc['threads']} threads, "
      f"mask {serve['mask_live']}/{serve['mask_total']}, "
      f"serve_single {fresh:.0f}/s (committed {pinned:.0f}/s), "
      f"blocking 1t {blocking['wall_ms_1t']:.1f} ms at x4, "
      f"feature_extraction 1t {feat['wall_ms_1t']:.1f} ms at x4, "
      f"scaling stages x{'/x'.join(str(s['factor']) for s in committed['scaling'])}, "
      f"scaling_match x{'/x'.join(str(s['factor']) for s in committed_match)} "
      f"(x64 match RSS {x64['peak_rss_mib']:.0f} MiB), "
      f"AL {le['al_labels_to_target']}/{le['random_labels_total']} labels to target, "
      f"weak f1 {weak['f1']:.2f} at 0 oracle labels, "
      f"serve_load saturation 1/2/4 shards "
      f"{saturation(committed_sl, 1):.0f}/{saturation(committed_sl, 2):.0f}/"
      f"{saturation(committed_sl, 4):.0f} req/s "
      f"({committed_sl['speedup_4x_vs_1x']:.2f}x at 4 shards)")
EOF

echo "==> all checks passed"
