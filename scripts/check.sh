#!/usr/bin/env bash
# Pre-PR gate: build, test, lint. All three must pass.
#
#   scripts/check.sh [--offline]
#
# Mirrors what CI runs; `--offline` (the default in the dev container)
# forbids registry access — all dependencies are vendored.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--offline)
if [[ "${1:-}" == "--online" ]]; then
    CARGO_FLAGS=()
fi

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --release

echo "==> cargo test"
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings

echo "==> all checks passed"
